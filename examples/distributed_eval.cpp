// Example: the Fig 3 distributed deployment in miniature. An evaluation
// host drives two workload-generator services — each owning its own disk
// array — over message channels, exactly as the testbed ran them over TCP.
// Each service runs on its own thread; results flow back as PERF_RESULT
// frames and land in one results table.
//
// Each remote is driven through a CampaignRunner, so the distributed
// campaign gets the same failure semantics as the local one: a test that
// fails on the wire is retried, then isolated to a single failed slot
// instead of sinking the whole run.
//
// The links are net::FaultyEndpoints, so the wire can be degraded from the
// command line (docs/RESILIENCE.md):
//
//   distributed_eval [--drop R] [--dup R] [--corrupt R] [--delay R]
//                    [--reorder R] [--fault-seed N] [--disconnect-at N]
//                    [--metrics-out PATH]
//
// With faults enabled the clients turn on heartbeats, liveness deadlines,
// retries, and reconnect; the run must still produce every record exactly
// once. --disconnect-at N hard-closes each remote's first connection at
// frame N to demonstrate reconnect + server-side dedup. --metrics-out
// writes the obs counter snapshot (retries, dedup hits, reconnects, fault
// tallies) as JSON.
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/campaign.h"
#include "core/remote.h"
#include "net/fault.h"
#include "obs/registry.h"
#include "util/table.h"

namespace {

using namespace tracer;

struct CliOptions {
  net::FaultPlan plan;                // rates shared by both directions
  std::uint64_t disconnect_at = 0;    // first connection, server->client
  std::filesystem::path metrics_out;  // empty = don't write

  bool faulty() const {
    return plan.drop_rate > 0 || plan.duplicate_rate > 0 ||
           plan.corrupt_rate > 0 || plan.delay_rate > 0 ||
           plan.reorder_rate > 0 || disconnect_at > 0;
  }
};

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--drop") {
      options.plan.drop_rate = std::stod(value(i));
    } else if (arg == "--dup") {
      options.plan.duplicate_rate = std::stod(value(i));
    } else if (arg == "--corrupt") {
      options.plan.corrupt_rate = std::stod(value(i));
    } else if (arg == "--delay") {
      options.plan.delay_rate = std::stod(value(i));
    } else if (arg == "--reorder") {
      options.plan.reorder_rate = std::stod(value(i));
    } else if (arg == "--fault-seed") {
      options.plan.seed = std::stoull(value(i));
    } else if (arg == "--disconnect-at") {
      options.disconnect_at = std::stoull(value(i));
    } else if (arg == "--metrics-out") {
      options.metrics_out = value(i);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: distributed_eval [--drop R] [--dup R] [--corrupt R]\n"
          "            [--delay R] [--reorder R] [--fault-seed N]\n"
          "            [--disconnect-at N] [--metrics-out PATH]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

/// One reconnectable client<->service link: a service thread accepting
/// fresh endpoint pairs, and a client communicator whose reconnect hook
/// re-pairs through it — the in-process shape of "dial the server again".
class RemoteLink {
 public:
  RemoteLink(core::EvaluationHost& host, const CliOptions& options,
             std::uint64_t salt)
      : options_(options), salt_(salt), service_(host) {
    server_thread_ = std::thread([this] {
      while (auto endpoint = accept()) {
        net::Communicator comm(std::move(*endpoint));
        service_.serve(comm);
      }
    });
    comm_.emplace(connect());
    if (options_.faulty()) {
      comm_->set_heartbeat_interval(0.05);
      comm_->set_liveness_timeout(0.5);
    }
    core::RemoteClientOptions client_options;
    if (options_.faulty()) {
      client_options.max_attempts = 20;
      client_options.backoff.base = 0.005;
      client_options.backoff.cap = 0.05;
      client_options.backoff.jitter = 0.2;
    }
    client_.emplace(*comm_, client_options);
    client_->set_reconnect([this] {
      comm_->reset(connect());
      return true;
    });
  }

  core::RemoteWorkloadClient& client() { return *client_; }

  void shutdown() {
    client_->stop();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    server_thread_.join();
  }

 private:
  net::FaultyEndpoint connect() {
    const std::uint64_t n = connections_++;
    net::FaultPlan to_server = options_.plan;
    net::FaultPlan to_client = options_.plan;
    to_server.seed = options_.plan.seed * 4099 + salt_ * 2 + n;
    to_client.seed = options_.plan.seed * 8209 + salt_ * 2 + n + 1;
    // Only the first connection carries the scripted hard disconnect; the
    // re-dialed ones stay up (modulo the probabilistic faults).
    to_client.disconnect_at = n == 0 ? options_.disconnect_at : 0;
    auto [client_end, server_end] =
        net::make_faulty_channel(to_server, to_client);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_.push_back(std::move(server_end));
    }
    cv_.notify_all();
    return std::move(client_end);
  }

  std::optional<net::FaultyEndpoint> accept() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !pending_.empty(); });
    if (pending_.empty()) return std::nullopt;
    auto endpoint = std::move(pending_.front());
    pending_.pop_front();
    return endpoint;
  }

  CliOptions options_;
  std::uint64_t salt_;
  std::uint64_t connections_ = 0;
  core::WorkloadGeneratorService service_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<net::FaultyEndpoint> pending_;
  bool closed_ = false;
  std::optional<net::Communicator> comm_;
  std::optional<core::RemoteWorkloadClient> client_;
  std::thread server_thread_;
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_args(argc, argv);

  const auto repo =
      std::filesystem::temp_directory_path() / "tracer-distributed";
  core::EvaluationOptions options;
  options.collection_duration = 3.0;

  // Two storage systems under test, one per "workload generator machine".
  core::EvaluationHost hdd_host(storage::ArrayConfig::hdd_testbed(6),
                                repo / "hdd", options);
  core::EvaluationHost ssd_host(storage::ArrayConfig::ssd_testbed(4),
                                repo / "ssd", options);

  RemoteLink hdd_link(hdd_host, cli, /*salt=*/1);
  RemoteLink ssd_link(ssd_host, cli, /*salt=*/2);

  workload::WorkloadMode base;
  base.request_size = 16 * kKiB;
  base.read_ratio = 0.5;
  base.random_ratio = 0.5;
  std::vector<workload::WorkloadMode> modes;
  for (double load : {0.3, 0.6, 1.0}) {
    workload::WorkloadMode mode = base;
    mode.load_proportion = load;
    modes.push_back(mode);
  }

  // One runner per remote; a generator channel serves one test at a time,
  // so each runner drives its remote single-threaded while the two remotes
  // proceed in parallel — Fig 3's multi-machine concurrency.
  auto remote_executor = [](core::RemoteWorkloadClient& remote) {
    return [&remote](const workload::WorkloadMode& mode) {
      if (!remote.configure(mode)) {
        throw std::runtime_error("remote: configure failed");
      }
      const auto record = remote.start(/*timeout=*/600.0);
      if (!record) throw std::runtime_error("remote: start failed");
      return *record;
    };
  };
  core::CampaignOptions campaign_options;
  campaign_options.threads = 1;
  campaign_options.max_retries = 1;
  core::CampaignRunner hdd_runner(remote_executor(hdd_link.client()),
                                  hdd_host.array_config().name,
                                  campaign_options);
  core::CampaignRunner ssd_runner(remote_executor(ssd_link.client()),
                                  ssd_host.array_config().name,
                                  campaign_options);

  core::CampaignReport hdd_report;
  core::CampaignReport ssd_report;
  std::thread hdd_campaign([&] { hdd_report = hdd_runner.run(modes); });
  std::thread ssd_campaign([&] { ssd_report = ssd_runner.run(modes); });
  hdd_campaign.join();
  ssd_campaign.join();

  hdd_link.shutdown();
  ssd_link.shutdown();

  util::Table table({"host", "mode", "IOPS", "MBPS", "watts", "IOPS/Watt"});
  for (const auto* report : {&hdd_report, &ssd_report}) {
    for (std::size_t i = 0; i < report->outcomes.size(); ++i) {
      const core::TestOutcome& outcome = report->outcomes[i];
      if (!outcome.ok()) {
        std::fprintf(stderr, "test %s failed: %s\n",
                     modes[i].to_string().c_str(), outcome.error.c_str());
        continue;
      }
      const db::TestRecord& record = outcome.record;
      table.row()
          .add(record.device)
          .add(modes[i].to_string())
          .add(record.iops, 1)
          .add(record.mbps, 2)
          .add(record.avg_watts, 1)
          .add(record.iops_per_watt, 3)
          .done();
    }
  }

  std::printf("distributed evaluation over message channels (Fig 3):\n");
  table.print(std::cout);
  std::printf("\nlocal databases: hdd=%zu records, ssd=%zu records\n",
              hdd_host.database().size(), ssd_host.database().size());

  if (cli.faulty()) {
    auto& reg = obs::Registry::global();
    auto count = [&reg](const char* name) {
      return static_cast<unsigned long long>(reg.counter(name).value());
    };
    std::printf(
        "resilience: %llu retries, %llu dedup hits, %llu reconnects, "
        "%llu dropped, %llu corrupted, %llu disconnects\n",
        count("net.rpc.retries"), count("net.rpc.dedup_hits"),
        count("net.rpc.reconnects"), count("net.fault.dropped"),
        count("net.fault.corrupted"), count("net.fault.disconnects"));
  }
  if (!cli.metrics_out.empty()) {
    obs::Registry::global().snapshot().write_json(cli.metrics_out);
    std::printf("metrics written to %s\n", cli.metrics_out.string().c_str());
  }
  return hdd_report.all_ok() && ssd_report.all_ok() ? 0 : 1;
}
