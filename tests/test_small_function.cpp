#include "util/small_function.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>

namespace tracer::util {
namespace {

using Fn = SmallFunction<void(), 112>;
using IntFn = SmallFunction<int(int), 112>;

TEST(SmallFunction, DefaultIsEmpty) {
  Fn fn;
  EXPECT_FALSE(fn);
  Fn null_fn(nullptr);
  EXPECT_FALSE(null_fn);
}

TEST(SmallFunction, InvokesSmallClosureInline) {
  int counter = 0;
  Fn fn([&counter] { ++counter; });
  ASSERT_TRUE(fn);
  EXPECT_TRUE(fn.stored_inline());
  fn();
  fn();
  EXPECT_EQ(counter, 2);
}

TEST(SmallFunction, ForwardsArgumentsAndReturnValues) {
  IntFn fn([](int x) { return x * 3; });
  EXPECT_EQ(fn(14), 42);
}

TEST(SmallFunction, LargeClosureFallsBackToHeap) {
  std::array<double, 32> payload{};  // 256 bytes > 112-byte buffer
  payload[7] = 1.5;
  SmallFunction<double(), 112> fn([payload] { return payload[7]; });
  ASSERT_TRUE(fn);
  EXPECT_FALSE(fn.stored_inline());
  EXPECT_DOUBLE_EQ(fn(), 1.5);
}

TEST(SmallFunction, FitsInlinePredicateMatchesStorage) {
  auto small = [] {};
  auto big = [payload = std::array<char, 200>{}] { (void)payload; };
  static_assert(Fn::fits_inline<decltype(small)>);
  static_assert(!Fn::fits_inline<decltype(big)>);
  EXPECT_TRUE(Fn(small).stored_inline());
  EXPECT_FALSE(Fn(big).stored_inline());
}

TEST(SmallFunction, ReplayEngineSizedCapturesStayInline) {
  // The device models capture ~96 bytes (request + completion callback);
  // they must not regress onto the heap.
  struct Pending {
    std::uint64_t id, sector, bytes, op;
    double submit_time;
    std::function<void(int)> done;
  };
  auto completion = [p = Pending{}, finish = 0.0, used = std::size_t{0}]() {
    (void)finish;
    (void)used;
    (void)p;
  };
  static_assert(Fn::fits_inline<decltype(completion)>);
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int counter = 0;
  Fn a([&counter] { ++counter; });
  Fn b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(counter, 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(counter, 2);
}

TEST(SmallFunction, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  Fn holder([token] { (void)token; });
  token.reset();
  EXPECT_FALSE(alive.expired());
  holder = Fn([] {});
  EXPECT_TRUE(alive.expired());
}

TEST(SmallFunction, DestructorReleasesHeapClosure) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    std::array<char, 200> ballast{};
    SmallFunction<void(), 112> fn([token, ballast] { (void)ballast; });
    EXPECT_FALSE(fn.stored_inline());
    token.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(SmallFunction, ResetEmptiesAndReleases) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  Fn fn([token] { (void)token; });
  token.reset();
  fn.reset();
  EXPECT_FALSE(fn);
  EXPECT_TRUE(alive.expired());
}

TEST(SmallFunction, WrapsStdFunctionLvalue) {
  int hits = 0;
  std::function<void()> stdfn = [&hits] { ++hits; };
  Fn fn(stdfn);
  EXPECT_TRUE(fn.stored_inline());  // std::function is 32 bytes on libstdc++
  fn();
  stdfn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, MutableClosureKeepsState) {
  SmallFunction<int(), 112> fn([n = 0]() mutable { return ++n; });
  EXPECT_EQ(fn(), 1);
  EXPECT_EQ(fn(), 2);
  EXPECT_EQ(fn(), 3);
}

}  // namespace
}  // namespace tracer::util
