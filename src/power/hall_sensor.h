// Hall-effect current loop + voltage probe model (the paper's Kingsin KS706
// clamps a magnetic loop around the 220 V AC feed of the array, §V-A).
//
// The sensor converts a true average power into a measured (volts, amps,
// watts) triple with calibration bias, per-sample noise, and ADC
// quantisation, so accuracy results are measured through a realistic
// instrument rather than read off the simulator directly.
#pragma once

#include "util/rng.h"
#include "util/types.h"

namespace tracer::power {

/// One meter reading at the end of a sampling cycle.
struct PowerSample {
  Seconds time = 0.0;   ///< cycle end time
  double volts = 0.0;   ///< measured RMS line voltage
  double amps = 0.0;    ///< measured RMS current
  Watts watts = 0.0;    ///< measured average power over the cycle
  Watts true_watts = 0.0;  ///< ground truth (kept for error analysis)
};

struct HallSensorParams {
  double line_voltage = 220.0;   ///< nominal RMS supply (220 V AC testbed)
  double voltage_ripple = 0.002; ///< relative sigma of line voltage
  double gain_sigma = 0.001;     ///< calibration gain error sigma (fixed/run)
  double offset_watts = 0.05;    ///< additive offset sigma (fixed per run)
  double noise_relative = 0.004; ///< per-sample multiplicative noise sigma
  double quantum_watts = 0.01;   ///< ADC power quantisation step
};

class HallSensor {
 public:
  /// Calibration biases are drawn once from `rng` at construction, matching
  /// how a physical meter is miscalibrated once, not per sample.
  HallSensor(const HallSensorParams& params, util::Rng rng);

  /// Convert a true average power over one cycle into a meter reading.
  PowerSample measure(Seconds t, Watts true_avg_power);

  const HallSensorParams& params() const { return params_; }

 private:
  HallSensorParams params_;
  util::Rng rng_;
  double gain_ = 1.0;
  double offset_ = 0.0;
};

}  // namespace tracer::power
