// Binary ".replay" trace format (the blktrace-derived layout of Fig 4).
//
// Layout (little-endian):
//   magic "TRCR" | u16 version | str device
//   u64 bunch_count
//   per bunch: f64 timestamp | u32 package_count
//     per package: u64 sector | u32 bytes | u8 op
//
// Sanity limits guard against loading corrupted files into memory.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace tracer::trace {

inline constexpr char kBlkMagic[4] = {'T', 'R', 'C', 'R'};
inline constexpr std::uint16_t kBlkVersion = 1;

/// Extension used by the trace repository, matching the paper's ".replay".
inline constexpr const char* kBlkExtension = ".replay";

void write_blk(std::ostream& out, const Trace& trace);
void write_blk_file(const std::string& path, const Trace& trace);

/// Throws std::runtime_error on bad magic/version/truncation.
/// Reads each bunch's package array with one bulk read into a scratch
/// buffer (not per-field stream extraction) — the campaign-scale path.
Trace read_blk(std::istream& in);
Trace read_blk_file(const std::string& path);

/// Reference decoder: the original per-field streamed implementation.
/// Kept as the readable specification of the layout and as the baseline
/// the BM_BlkReadBulk micro-benchmark compares against; produces output
/// identical to read_blk.
Trace read_blk_streamed(std::istream& in);

}  // namespace tracer::trace
