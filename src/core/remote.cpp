#include "core/remote.h"

namespace tracer::core {

net::Message encode_mode(const workload::WorkloadMode& mode) {
  net::Message message;
  message.type = net::MessageType::kConfigureTest;
  message.set_u64("request_size", mode.request_size);
  message.set_double("random_ratio", mode.random_ratio);
  message.set_double("read_ratio", mode.read_ratio);
  message.set_double("load_proportion", mode.load_proportion);
  return message;
}

std::optional<workload::WorkloadMode> decode_mode(
    const net::Message& message) {
  const auto size = message.get_u64("request_size");
  const auto random_ratio = message.get_double("random_ratio");
  const auto read_ratio = message.get_double("read_ratio");
  const auto load = message.get_double("load_proportion");
  if (!size || !random_ratio || !read_ratio || !load) return std::nullopt;
  workload::WorkloadMode mode;
  mode.request_size = *size;
  mode.random_ratio = *random_ratio;
  mode.read_ratio = *read_ratio;
  mode.load_proportion = *load;
  return mode;
}

net::Message encode_record(const db::TestRecord& record) {
  net::Message message;
  message.type = net::MessageType::kPerfResult;
  message.set("device", record.device);
  message.set("trace", record.trace_name);
  message.set_u64("request_size", record.request_size);
  message.set_double("random_ratio", record.random_ratio);
  message.set_double("read_ratio", record.read_ratio);
  message.set_double("load_proportion", record.load_proportion);
  message.set_double("avg_amps", record.avg_amps);
  message.set_double("avg_volts", record.avg_volts);
  message.set_double("avg_watts", record.avg_watts);
  message.set_double("joules", record.joules);
  message.set_double("iops", record.iops);
  message.set_double("mbps", record.mbps);
  message.set_double("avg_response_ms", record.avg_response_ms);
  message.set_double("iops_per_watt", record.iops_per_watt);
  message.set_double("mbps_per_kilowatt", record.mbps_per_kilowatt);
  return message;
}

std::optional<db::TestRecord> decode_record(const net::Message& message) {
  db::TestRecord record;
  const auto device = message.get("device");
  const auto trace_name = message.get("trace");
  const auto size = message.get_u64("request_size");
  if (!device || !trace_name || !size) return std::nullopt;
  record.device = *device;
  record.trace_name = *trace_name;
  record.request_size = *size;
  auto take = [&message](const char* key, double& out) {
    if (auto v = message.get_double(key)) out = *v;
  };
  take("random_ratio", record.random_ratio);
  take("read_ratio", record.read_ratio);
  take("load_proportion", record.load_proportion);
  take("avg_amps", record.avg_amps);
  take("avg_volts", record.avg_volts);
  take("avg_watts", record.avg_watts);
  take("joules", record.joules);
  take("iops", record.iops);
  take("mbps", record.mbps);
  take("avg_response_ms", record.avg_response_ms);
  take("iops_per_watt", record.iops_per_watt);
  take("mbps_per_kilowatt", record.mbps_per_kilowatt);
  return record;
}

net::Message WorkloadGeneratorService::handle(const net::Message& command) {
  switch (command.type) {
    case net::MessageType::kConfigureTest: {
      auto mode = decode_mode(command);
      if (!mode) {
        return net::make_error(command.sequence, "bad workload mode");
      }
      configured_ = *mode;
      return net::make_ack(command.sequence);
    }
    case net::MessageType::kStartTest: {
      if (!configured_) {
        return net::make_error(command.sequence, "no test configured");
      }
      // A failed test must come back as an ERROR frame, not unwind through
      // serve() and kill the service (the host is still healthy).
      try {
        TestResult result = host_.run_test(*configured_);
        net::Message reply = encode_record(result.record);
        reply.sequence = command.sequence;
        return reply;
      } catch (const std::exception& e) {
        return net::make_error(command.sequence, e.what());
      }
    }
    case net::MessageType::kStopTest:
      return net::make_ack(command.sequence);
    default:
      return net::make_error(command.sequence,
                             std::string("unsupported command ") +
                                 net::to_string(command.type));
  }
}

void WorkloadGeneratorService::serve(net::Communicator& comm) {
  while (true) {
    auto command = comm.recv(/*timeout=*/3600.0);
    if (!command) return;  // peer hung up or idle timeout

    // While a test runs, stream per-cycle PROGRESS frames — the wire form
    // of the GUI's real-time display. Sequence 0 marks them out-of-band.
    if (command->type == net::MessageType::kStartTest) {
      host_.set_cycle_callback([&comm](const CycleSnapshot& snapshot) {
        net::Message progress;
        progress.type = net::MessageType::kProgress;
        progress.sequence = 0;
        progress.set_double("time", snapshot.time);
        progress.set_double("iops", snapshot.iops);
        progress.set_double("mbps", snapshot.mbps);
        progress.set_double("watts", snapshot.watts);
        progress.set_u64("completions", snapshot.completions);
        progress.set_u64("in_flight", snapshot.in_flight);
        comm.send_oob(progress);
      });
    }
    net::Message reply = handle(*command);
    host_.set_cycle_callback(nullptr);
    reply.sequence = command->sequence;
    comm.send(std::move(reply));
    if (command->type == net::MessageType::kStopTest) return;
  }
}

bool RemoteWorkloadClient::configure(const workload::WorkloadMode& mode,
                                     Seconds timeout) {
  auto reply = comm_.request(encode_mode(mode), timeout);
  return reply && reply->type == net::MessageType::kAck;
}

std::optional<db::TestRecord> RemoteWorkloadClient::start(Seconds timeout) {
  net::Message command;
  command.type = net::MessageType::kStartTest;
  auto reply = comm_.request(std::move(command), timeout);
  if (!reply || reply->type != net::MessageType::kPerfResult) {
    return std::nullopt;
  }
  return decode_record(*reply);
}

void RemoteWorkloadClient::stop() {
  net::Message command;
  command.type = net::MessageType::kStopTest;
  comm_.request(std::move(command), 10.0);
}

}  // namespace tracer::core
