#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tracer::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The store must happen with mutex_ held: a worker that has checked its
    // wait condition but not yet blocked would otherwise miss the notify
    // and sleep forever (see the ordering contract on stopping_).
    MutexLock lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && queue_.empty()) {
        cv_.wait(lock);
      }
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              CancelToken* cancel) {
  if (n == 0) return;
  // One failed task dooms the sweep: stop enqueuing further work and let
  // tasks that were queued before the failure landed skip themselves, so
  // the first exception surfaces promptly instead of after n more tests.
  std::atomic<bool> failed{false};
  auto doomed = [&failed, cancel] {
    return failed.load(std::memory_order_acquire) ||
           (cancel != nullptr && cancel->cancelled());
  };
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (doomed()) break;
    futures.push_back(submit([&fn, i, &failed, &doomed] {
      if (doomed()) return;
      try {
        fn(i);
      } catch (...) {
        failed.store(true, std::memory_order_release);
        throw;
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tracer::util
