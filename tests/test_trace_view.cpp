// TraceView: the zero-copy selection/scaling layer must produce
// bunch-for-bunch identical replay input to the materializing
// ProportionalFilter / InterarrivalScaler paths, share (not copy) the
// underlying trace, and feed the replay engine to bit-identical metrics.
#include "trace/trace_view.h"

#include <gtest/gtest.h>

#include "core/interarrival_scaler.h"
#include "core/proportional_filter.h"
#include "core/replay_engine.h"
#include "storage/disk_array.h"
#include "util/rng.h"

namespace tracer::trace {
namespace {

// Same shape as test_filter_properties' bursty trace: bursty arrivals,
// mixed sizes and ops.
Trace bursty_trace(int bunches = 5000) {
  util::Rng rng(99);
  Trace trace;
  trace.device = "prop";
  Seconds t = 0.0;
  for (int b = 0; b < bunches; ++b) {
    t += rng.exponential(0.01);
    Bunch bunch;
    bunch.timestamp = t;
    const std::size_t packages = 1 + rng.below(6);
    for (std::size_t p = 0; p < packages; ++p) {
      bunch.packages.push_back(IoPackage{
          rng.below(1ULL << 30), (1 + rng.below(64)) * 512,
          rng.chance(0.6) ? OpType::kRead : OpType::kWrite});
    }
    trace.bunches.push_back(std::move(bunch));
  }
  return trace;
}

void expect_view_equals_trace(const TraceView& view, const Trace& expected) {
  ASSERT_EQ(view.bunch_count(), expected.bunches.size());
  for (std::size_t i = 0; i < view.bunch_count(); ++i) {
    EXPECT_EQ(view.timestamp(i), expected.bunches[i].timestamp) << "i=" << i;
    EXPECT_EQ(view.packages(i), expected.bunches[i].packages) << "i=" << i;
  }
  EXPECT_EQ(view.materialize(), expected);
}

TEST(TraceView, FullViewMirrorsTrace) {
  auto shared = std::make_shared<const Trace>(bursty_trace(200));
  TraceView view(shared);
  EXPECT_TRUE(view.valid());
  EXPECT_TRUE(view.selects_all());
  EXPECT_EQ(view.bunch_count(), shared->bunch_count());
  EXPECT_EQ(view.package_count(), shared->package_count());
  EXPECT_EQ(view.total_bytes(), shared->total_bytes());
  EXPECT_EQ(view.duration(), shared->duration());
  EXPECT_DOUBLE_EQ(view.read_ratio(), shared->read_ratio());
  EXPECT_DOUBLE_EQ(view.mean_request_size(), shared->mean_request_size());
  expect_view_equals_trace(view, *shared);
}

TEST(TraceView, ViewsShareNotCopyTheTrace) {
  auto shared = std::make_shared<const Trace>(bursty_trace(500));
  TraceView view(shared);
  TraceView filtered = core::ProportionalFilter::apply(view, 0.3);
  TraceView scaled = filtered.scaled(2.0);
  // All three alias the same underlying trace; only the use_count moves.
  EXPECT_EQ(view.shared_trace().get(), shared.get());
  EXPECT_EQ(filtered.shared_trace().get(), shared.get());
  EXPECT_EQ(scaled.shared_trace().get(), shared.get());
  // The bunch reference read through the view IS an underlying bunch, not
  // a copy: its address lies inside the shared trace's bunch array.
  const Bunch* underlying = &filtered.bunch(0);
  EXPECT_GE(underlying, shared->bunches.data());
  EXPECT_LT(underlying, shared->bunches.data() + shared->bunches.size());
}

TEST(TraceView, DefaultViewIsEmptyAndInvalid) {
  TraceView view;
  EXPECT_FALSE(view.valid());
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.bunch_count(), 0u);
  EXPECT_EQ(view.package_count(), 0u);
  EXPECT_EQ(view.duration(), 0.0);
  EXPECT_TRUE(view.materialize().empty());
}

TEST(TraceView, BorrowedAndOwningViewsAgree) {
  Trace trace = bursty_trace(100);
  TraceView borrowed = TraceView::borrowed(trace);
  TraceView owning = TraceView::owning(trace);  // copy moved in
  expect_view_equals_trace(borrowed, trace);
  expect_view_equals_trace(owning, *owning.shared_trace());
  EXPECT_EQ(owning.materialize(), trace);
}

TEST(TraceView, SelectValidatesPositions) {
  TraceView view(std::make_shared<const Trace>(bursty_trace(20)));
  EXPECT_THROW(view.select({0, 0}), std::invalid_argument);   // not increasing
  EXPECT_THROW(view.select({5, 3}), std::invalid_argument);   // decreasing
  EXPECT_THROW(view.select({25}), std::out_of_range);         // beyond view
  EXPECT_THROW(TraceView{}.select({0}), std::logic_error);    // invalid view
  EXPECT_THROW(view.scaled(0.0), std::invalid_argument);
  EXPECT_THROW(view.scaled(-1.0), std::invalid_argument);
}

TEST(TraceView, SelectComposesThroughViewPositions) {
  TraceView view(std::make_shared<const Trace>(bursty_trace(100)));
  // First keep even underlying indices, then the first three *view* slots:
  // composition must land on underlying 0, 2, 4 — not 0, 1, 2.
  std::vector<TraceView::Index> evens;
  for (TraceView::Index i = 0; i < 100; i += 2) evens.push_back(i);
  TraceView even_view = view.select(std::move(evens));
  TraceView first3 = even_view.select({0, 1, 2});
  ASSERT_EQ(first3.bunch_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first3.bunch(i), view.bunch(2 * i));
  }
}

// ---------- equivalence with the materializing filter/scaler ----------

class ViewPipelineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ViewPipelineEquivalence, UniformFilterMatchesMaterializingPath) {
  const double proportion = GetParam() / 100.0;
  const Trace trace = bursty_trace();
  const Trace materialized =
      core::ProportionalFilter::apply(trace, proportion);
  const TraceView view = core::ProportionalFilter::apply(
      TraceView(std::make_shared<const Trace>(trace)), proportion);
  expect_view_equals_trace(view, materialized);
}

TEST_P(ViewPipelineEquivalence, RandomFilterMatchesMaterializingPath) {
  const double proportion = GetParam() / 100.0;
  const std::uint64_t seed = 0xfeedULL + static_cast<std::uint64_t>(GetParam());
  const Trace trace = bursty_trace();
  const Trace materialized =
      core::ProportionalFilter::apply_random(trace, proportion, seed);
  const TraceView view = core::ProportionalFilter::apply_random(
      TraceView(std::make_shared<const Trace>(trace)), proportion, seed);
  expect_view_equals_trace(view, materialized);
}

TEST_P(ViewPipelineEquivalence, ScalerMatchesMaterializingPath) {
  const double factor = GetParam() / 100.0 * 3.0;  // 0.3 .. 3.0
  const Trace trace = bursty_trace();
  const Trace materialized = core::InterarrivalScaler::scale(trace, factor);
  const TraceView view = core::InterarrivalScaler::scale(
      TraceView(std::make_shared<const Trace>(trace)), factor);
  expect_view_equals_trace(view, materialized);
}

TEST_P(ViewPipelineEquivalence, FilterThenScaleMatchesMaterializingPath) {
  const double proportion = GetParam() / 100.0;
  const Trace trace = bursty_trace();
  const Trace materialized = core::InterarrivalScaler::scale(
      core::ProportionalFilter::apply(trace, proportion), 4.0);
  const TraceView view = core::InterarrivalScaler::scale(
      core::ProportionalFilter::apply(
          TraceView(std::make_shared<const Trace>(trace)), proportion),
      4.0);
  expect_view_equals_trace(view, materialized);
}

TEST_P(ViewPipelineEquivalence, ScaleToDurationMatchesMaterializingPath) {
  const double target = 1.0 + GetParam() / 10.0;
  const Trace trace = bursty_trace();
  const Trace materialized =
      core::InterarrivalScaler::scale_to_duration(trace, target);
  const TraceView view = core::InterarrivalScaler::scale_to_duration(
      TraceView(std::make_shared<const Trace>(trace)), target);
  expect_view_equals_trace(view, materialized);
}

INSTANTIATE_TEST_SUITE_P(LoadLevels, ViewPipelineEquivalence,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80,
                                           90, 100));

// ---------- replay-metric identity (no behavioral drift) ----------

TEST(TraceViewReplay, ViewReplayIsBitIdenticalToMaterializedReplay) {
  const Trace peak = bursty_trace(800);
  const double proportion = 0.3;

  const Trace filtered_trace =
      core::ProportionalFilter::apply(peak, proportion);
  core::ReplayEngine materialized_engine;
  storage::DiskArray materialized_array(
      materialized_engine.simulator(), storage::ArrayConfig::hdd_testbed(6));
  const auto materialized =
      materialized_engine.replay(filtered_trace, materialized_array);

  const TraceView filtered_view = core::ProportionalFilter::apply(
      TraceView(std::make_shared<const Trace>(peak)), proportion);
  core::ReplayEngine view_engine;
  storage::DiskArray view_array(view_engine.simulator(),
                                storage::ArrayConfig::hdd_testbed(6));
  const auto viewed = view_engine.replay(filtered_view, view_array);

  EXPECT_EQ(viewed.bunches_replayed, materialized.bunches_replayed);
  EXPECT_EQ(viewed.packages_replayed, materialized.packages_replayed);
  EXPECT_EQ(viewed.replay_duration, materialized.replay_duration);
  EXPECT_EQ(viewed.perf.iops, materialized.perf.iops);
  EXPECT_EQ(viewed.perf.mbps, materialized.perf.mbps);
  EXPECT_EQ(viewed.perf.avg_response_ms, materialized.perf.avg_response_ms);
  EXPECT_EQ(viewed.avg_watts, materialized.avg_watts);
  EXPECT_EQ(viewed.joules, materialized.joules);
  EXPECT_EQ(viewed.efficiency.iops_per_watt,
            materialized.efficiency.iops_per_watt);
  EXPECT_EQ(viewed.efficiency.mbps_per_kilowatt,
            materialized.efficiency.mbps_per_kilowatt);
  // The replay must never have been saturated into clamping events.
  EXPECT_EQ(view_engine.simulator().late_schedule_count(), 0u);
}

}  // namespace
}  // namespace tracer::trace
