#include "core/metrics.h"

#include <gtest/gtest.h>

namespace tracer::core {
namespace {

TEST(Metrics, EfficiencyDefinitions) {
  const EfficiencyMetrics metrics = compute_efficiency(800.0, 40.0, 80.0);
  EXPECT_DOUBLE_EQ(metrics.iops_per_watt, 10.0);
  EXPECT_DOUBLE_EQ(metrics.mbps_per_kilowatt, 500.0);
}

TEST(Metrics, EfficiencyRejectsNonPositivePower) {
  EXPECT_THROW(compute_efficiency(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(compute_efficiency(1.0, 1.0, -5.0), std::invalid_argument);
}

TEST(Metrics, LoadProportionEquationOne) {
  // LP(f, f') = T(f') / T(f).
  EXPECT_DOUBLE_EQ(load_proportion(1000.0, 300.0), 0.3);
  EXPECT_DOUBLE_EQ(load_proportion(500.0, 500.0), 1.0);
  EXPECT_THROW(load_proportion(0.0, 1.0), std::invalid_argument);
}

TEST(Metrics, AccuracyEquationTwo) {
  // A(f, f') = LP / LP_config; ideal is 1.
  EXPECT_DOUBLE_EQ(load_control_accuracy(0.3, 0.3), 1.0);
  EXPECT_NEAR(load_control_accuracy(0.2938, 0.3), 0.9793, 1e-4);
  EXPECT_THROW(load_control_accuracy(0.5, 0.0), std::invalid_argument);
}

TEST(Metrics, LoadControlRowCombinesBothThroughputs) {
  const LoadControlRow row =
      make_load_control_row(0.5, 1000.0, 10.0, 510.0, 4.9);
  EXPECT_DOUBLE_EQ(row.configured, 0.5);
  EXPECT_DOUBLE_EQ(row.measured_iops_lp, 0.51);
  EXPECT_DOUBLE_EQ(row.measured_mbps_lp, 0.49);
  EXPECT_DOUBLE_EQ(row.accuracy_iops, 1.02);
  EXPECT_DOUBLE_EQ(row.accuracy_mbps, 0.98);
}

TEST(Metrics, PaperTableIVFirstRowReproducible) {
  // Table IV row 1: configured 10, measured 9.9266 -> accuracy 0.99266.
  EXPECT_NEAR(load_control_accuracy(0.099266, 0.10), 0.99266, 1e-6);
}

}  // namespace
}  // namespace tracer::core
