#include "sim/arrival_process.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tracer::sim {
namespace {

double mean_gap(ArrivalProcess& process, util::Rng& rng, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += process.next_gap(rng);
  return sum / n;
}

TEST(ConstantArrivals, ExactGaps) {
  util::Rng rng(1);
  ConstantArrivals arrivals(4.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(arrivals.next_gap(rng), 0.25);
  }
}

TEST(ConstantArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(ConstantArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(ConstantArrivals(-1.0), std::invalid_argument);
}

TEST(PoissonArrivals, MeanMatchesRate) {
  util::Rng rng(2);
  PoissonArrivals arrivals(50.0);
  EXPECT_NEAR(mean_gap(arrivals, rng, 200000), 1.0 / 50.0, 5e-4);
}

TEST(PoissonArrivals, GapsAlwaysPositive) {
  util::Rng rng(3);
  PoissonArrivals arrivals(10.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(arrivals.next_gap(rng), 0.0);
  }
}

TEST(ParetoArrivals, MeanMatchesRate) {
  util::Rng rng(4);
  ParetoArrivals arrivals(20.0, 2.5);
  EXPECT_NEAR(mean_gap(arrivals, rng, 500000), 1.0 / 20.0, 2e-3);
}

TEST(ParetoArrivals, HeavierTailThanPoisson) {
  util::Rng rng(5);
  ParetoArrivals pareto(10.0, 1.5);
  PoissonArrivals poisson(10.0);
  util::Rng rng2(5);
  double pareto_max = 0.0;
  double poisson_max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    pareto_max = std::max(pareto_max, pareto.next_gap(rng));
    poisson_max = std::max(poisson_max, poisson.next_gap(rng2));
  }
  EXPECT_GT(pareto_max, poisson_max);
}

TEST(ParetoArrivals, RejectsShallowAlpha) {
  EXPECT_THROW(ParetoArrivals(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParetoArrivals(1.0, 0.5), std::invalid_argument);
}

TEST(DiurnalArrivals, MeanRateNearBase) {
  util::Rng rng(6);
  DiurnalArrivals arrivals(100.0, 0.5, 10.0);
  // Over many periods the sine modulation averages out (approximately; the
  // process spends slightly more events in high-rate phases).
  const double mean = mean_gap(arrivals, rng, 300000);
  EXPECT_NEAR(mean, 0.01, 0.002);
}

TEST(DiurnalArrivals, ModulatesIntensityOverPhase) {
  util::Rng rng(7);
  const double period = 100.0;
  DiurnalArrivals arrivals(50.0, 0.8, period);
  // Count arrivals per half-period; highs and lows must differ markedly.
  std::vector<int> counts(20, 0);
  double t = 0.0;
  while (t < period * 10) {
    t += arrivals.next_gap(rng);
    const auto bucket =
        static_cast<std::size_t>(std::fmod(t, period) / period * 20.0);
    if (bucket < counts.size()) ++counts[bucket];
  }
  int lo = counts[0];
  int hi = counts[0];
  for (int c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, lo * 2);
}

TEST(DiurnalArrivals, RejectsBadParameters) {
  EXPECT_THROW(DiurnalArrivals(0.0, 0.5, 10.0), std::invalid_argument);
  EXPECT_THROW(DiurnalArrivals(1.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(DiurnalArrivals(1.0, -0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(DiurnalArrivals(1.0, 0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tracer::sim
