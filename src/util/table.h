// Aligned ASCII table printer used by the bench harnesses to emit
// paper-style tables (Table IV/V rows, figure series).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tracer::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> row);

  /// Fluent numeric row builder mirroring CsvWriter::RowBuilder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& add(const std::string& s);
    RowBuilder& add(double v, int precision = 3);
    RowBuilder& add(std::uint64_t v);
    RowBuilder& add(int v);
    void done();

   private:
    Table& table_;
    std::vector<std::string> fields_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a header rule.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tracer::util
