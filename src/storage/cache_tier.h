// Controller DRAM write-back cache + optional SSD-over-HDD tier, layered as
// a BlockDevice wrapper in front of any backing device (DiskArray,
// RaidController, a single drive). Both replay kernels drive it unchanged.
//
// Why it exists: TRACER compares energy-conservation techniques by
// IOPS/Watt, but a media-direct array model makes spin-down almost never
// pay off — every request touches a spindle. Real controllers absorb most
// of the traffic in DRAM (the Alibaba block-storage analysis in PAPERS.md:
// write-dominant, cache-absorbing volumes), and Open-CAS-style SSD tiers
// catch the warm read set, so HDDs can actually sleep. 2DIO's point
// (PAPERS.md) is the flip side: replayed metrics are wrong unless cache
// state is realistic — hence ReplayOptions::warmup_window, which populates
// this cache before the measured window opens.
//
// Semantics (all deterministic — LRU lists, never hash-map iteration):
//   - reads entirely in DRAM complete at hit_latency with a hit_extra_watts
//     pulse; the backing device is NOT touched, so spun-down disks stay
//     asleep (the first scenarios where SpinDownManager wins).
//   - reads entirely in DRAM ∪ tier (≥1 line from the tier) complete at
//     tier_hit_latency; tier lines are copied into DRAM.
//   - anything else forwards to the backing device; returned lines fill the
//     DRAM cache (clean), evicting LRU lines. Evicted dirty lines are
//     written back immediately; evicted lines read at least promote_after
//     times are promoted into the SSD tier (victim-cache style).
//   - writes are absorbed: lines allocate dirty in DRAM at hit_latency and
//     overlapping tier copies are invalidated. A dirty ratio above
//     flush_threshold triggers a background flush batch of the coldest
//     dirty lines (at most flush_batch_lines per batch, one batch in
//     flight).
//   - requests spanning more lines than the cache holds bypass it entirely
//     (overlapping cached lines are dropped first).
//
// Power: the wrapper owns a PowerTimeline (standing draw idle_watts +
// tier_idle_watts, pulses per DRAM/tier hit) and reports it PLUS the
// backing device's power, so one analyzer channel meters the whole stack.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "power/power_timeline.h"
#include "storage/block_device.h"

namespace tracer::storage {

struct CacheTierParams {
  bool enabled = false;            ///< disabled ⇒ replay is bit-identical to media-direct
  Bytes capacity = 256 * kMiB;     ///< DRAM write-back cache size
  Bytes line_size = 64 * kKiB;     ///< cache line; multiple of kSectorSize
  double flush_threshold = 0.5;    ///< dirty ratio that triggers a flush batch
  std::size_t flush_batch_lines = 64;  ///< max lines written back per batch
  Seconds hit_latency = 50e-6;     ///< DRAM hit service time
  Watts idle_watts = 4.0;          ///< DRAM + cache controller standing draw
  Watts hit_extra_watts = 1.5;     ///< pulse while serving a DRAM hit

  bool tier_enabled = false;       ///< Open-CAS-style SSD-over-HDD tier
  Bytes tier_capacity = 32 * kMiB;
  std::uint32_t promote_after = 2; ///< DRAM accesses before a line may promote
  Seconds tier_hit_latency = 250e-6;
  Watts tier_idle_watts = 1.0;     ///< SSD tier standing draw
  Watts tier_extra_watts = 2.0;    ///< pulse while serving a tier hit
};

/// Monotone counters mirrored into obs:: (`cache.*`, `tier.*`).
struct CacheTierStats {
  std::uint64_t hits = 0;        ///< requests served from DRAM (reads + absorbed writes)
  std::uint64_t misses = 0;      ///< requests forwarded to the backing device
  std::uint64_t bypasses = 0;    ///< requests too large to cache (subset of misses)
  std::uint64_t flushes = 0;     ///< background flush batches issued
  std::uint64_t evictions = 0;   ///< DRAM lines evicted (dirty ones written back)
  std::uint64_t tier_hits = 0;   ///< requests served from the SSD tier
  std::uint64_t promotions = 0;  ///< lines promoted DRAM -> tier
  std::uint64_t demotions = 0;   ///< lines dropped from a full tier
};

class CacheTier final : public BlockDevice {
 public:
  /// `backing` is borrowed, must share `sim`, and must outlive the wrapper.
  CacheTier(sim::Simulator& sim, const CacheTierParams& params,
            BlockDevice& backing);

  // BlockDevice
  Bytes capacity() const override { return backing_.capacity(); }
  void submit(const IoRequest& request, CompletionCallback done) override;
  std::size_t outstanding() const override {
    return foreground_ + background_writes_;
  }
  std::size_t max_concurrent_events() const override;

  // PowerSource: the cache's own draw plus the backing device's.
  std::string name() const override;
  Watts power_at(Seconds t) const override;
  Joules energy_until(Seconds t) override;

  const CacheTierParams& params() const { return params_; }
  const CacheTierStats& stats() const { return stats_; }
  std::size_t dram_lines() const { return dram_.size(); }
  std::size_t dirty_lines() const { return dirty_; }
  std::size_t tier_lines() const { return tier_.size(); }

 private:
  using LineId = std::uint64_t;
  using LruList = std::list<LineId>;

  struct DramEntry {
    LruList::iterator lru;
    bool dirty = false;
    std::uint32_t accesses = 0;
  };
  struct TierEntry {
    LruList::iterator lru;
  };

  LineId first_line(const IoRequest& r) const;
  LineId last_line(const IoRequest& r) const;

  bool dram_has(LineId line) const { return dram_.count(line) != 0; }
  bool tier_has(LineId line) const { return tier_.count(line) != 0; }

  /// Move an existing DRAM line to the hot end and bump its access count.
  void touch_dram(LineId line);
  /// Insert a line into DRAM (evicting if full). No-op if already present.
  void insert_dram(LineId line, bool dirty);
  /// Evict the coldest DRAM line: write back if dirty, maybe promote.
  void evict_one_dram();
  /// Put a line into the SSD tier, demoting the coldest when full.
  void promote_to_tier(LineId line);
  void drop_from_tier(LineId line);

  void complete_locally(const IoRequest& request, CompletionCallback done,
                        Seconds latency, Watts extra_watts);
  void forward_miss(const IoRequest& request, CompletionCallback done);
  void write_back_line(LineId line);
  void maybe_flush();

  CacheTierParams params_;
  BlockDevice& backing_;
  power::PowerTimeline timeline_;

  std::size_t max_lines_ = 0;
  std::size_t max_tier_lines_ = 0;

  // LRU front = most recently used. Entries map into the lists; state is
  // only ever enumerated through the lists, keeping behaviour independent
  // of hash ordering.
  LruList dram_lru_;
  std::unordered_map<LineId, DramEntry> dram_;
  LruList tier_lru_;
  std::unordered_map<LineId, TierEntry> tier_;
  std::size_t dirty_ = 0;

  std::size_t foreground_ = 0;         ///< caller requests in flight
  std::size_t background_writes_ = 0;  ///< eviction/flush writes in flight
  bool flush_in_flight_ = false;
  std::size_t flush_remaining_ = 0;    ///< writes left in the current batch
  std::uint64_t scratch_id_ = 0;       ///< ids for internally generated I/O

  CacheTierStats stats_;
};

}  // namespace tracer::storage
