// Common scalar types and units used throughout TRACER.
//
// All simulation time is kept in double seconds (the trace formats the paper
// uses store microsecond timestamps; we convert at the format boundary).
// Sizes are bytes; device addresses are 512-byte sectors, matching blktrace.
#pragma once

#include <cstdint>

namespace tracer {

/// 512-byte sector address on a block device (blktrace convention).
using Sector = std::uint64_t;

/// Byte counts (request sizes, capacities).
using Bytes = std::uint64_t;

/// Simulation / trace time in seconds.
using Seconds = double;

/// Electrical power in watts.
using Watts = double;

/// Energy in joules.
using Joules = double;

inline constexpr Bytes kSectorSize = 512;
inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Direction of a block I/O request.
enum class OpType : std::uint8_t { kRead = 0, kWrite = 1 };

/// Human-readable name ("R"/"W") for trace dumps.
constexpr const char* to_string(OpType op) {
  return op == OpType::kRead ? "R" : "W";
}

}  // namespace tracer
