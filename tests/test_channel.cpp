#include "net/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace tracer::net {
namespace {

Frame bytes(std::initializer_list<std::uint8_t> values) {
  return Frame(values);
}

TEST(Channel, SendPollSameThread) {
  auto [a, b] = make_channel();
  EXPECT_TRUE(a.send(bytes({1, 2, 3})));
  auto frame = b.poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, bytes({1, 2, 3}));
  EXPECT_FALSE(b.poll().has_value());
}

TEST(Channel, DuplexDelivery) {
  auto [a, b] = make_channel();
  a.send(bytes({1}));
  b.send(bytes({2}));
  EXPECT_EQ(*b.poll(), bytes({1}));
  EXPECT_EQ(*a.poll(), bytes({2}));
}

TEST(Channel, FramesStayOrdered) {
  auto [a, b] = make_channel();
  for (std::uint8_t i = 0; i < 10; ++i) a.send(bytes({i}));
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*b.poll())[0], i);
  }
}

TEST(Channel, RecvTimesOutWhenEmpty) {
  auto [a, b] = make_channel();
  EXPECT_FALSE(b.recv(0.01).has_value());
}

TEST(Channel, RecvWakesOnCrossThreadSend) {
  auto [a, b] = make_channel();
  std::thread sender([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a.send(bytes({42}));
  });
  auto frame = b.recv(5.0);
  sender.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], 42);
}

TEST(Channel, SendToClosedPeerFails) {
  auto [a, b] = make_channel();
  b.close();
  EXPECT_FALSE(a.send(bytes({1})));
}

TEST(Channel, RecvReturnsPromptlyAfterPeerCloses) {
  auto [a, b] = make_channel();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a.close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(b.recv(10.0).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  closer.join();
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST(Channel, QueuedFramesReadableAfterPeerCloses) {
  auto [a, b] = make_channel();
  a.send(bytes({9}));
  a.close();
  auto frame = b.poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], 9);
}

TEST(Channel, MoveTransfersEndpoint) {
  auto [a, b] = make_channel();
  Endpoint moved = std::move(a);
  EXPECT_FALSE(a.connected());
  EXPECT_TRUE(moved.connected());
  moved.send(bytes({5}));
  EXPECT_EQ((*b.poll())[0], 5);
}

TEST(Channel, DisconnectedEndpointIsInert) {
  Endpoint endpoint;
  EXPECT_FALSE(endpoint.connected());
  EXPECT_FALSE(endpoint.send(bytes({1})));
  EXPECT_FALSE(endpoint.poll().has_value());
  EXPECT_FALSE(endpoint.recv(0.01).has_value());
}

TEST(Channel, StressManyFramesAcrossThreads) {
  auto [a, b] = make_channel();
  constexpr int kCount = 10000;
  std::thread producer([&a] {
    for (int i = 0; i < kCount; ++i) {
      Frame frame(4);
      frame[0] = static_cast<std::uint8_t>(i);
      frame[1] = static_cast<std::uint8_t>(i >> 8);
      a.send(std::move(frame));
    }
  });
  int received = 0;
  while (received < kCount) {
    if (auto frame = b.recv(5.0)) {
      const int value = (*frame)[0] | ((*frame)[1] << 8);
      ASSERT_EQ(value & 0xFFFF, received & 0xFFFF);
      ++received;
    } else {
      break;
    }
  }
  producer.join();
  EXPECT_EQ(received, kCount);
}

}  // namespace
}  // namespace tracer::net
