// Little-endian binary stream helpers for the trace file formats and the
// results database. Explicit byte order keeps files portable across hosts
// (trace repositories are shared between workload-generator machines).
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace tracer::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { little(v); }
  void u32(std::uint32_t v) { little(v); }
  void u64(std::uint64_t v) { little(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
  }
  bool good() const { return out_.good(); }

 private:
  template <typename T>
  void little(T v) {
    std::uint8_t bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    raw(bytes, sizeof(T));
  }

  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::uint16_t u16() { return little<std::uint16_t>(); }
  std::uint32_t u32() { return little<std::uint32_t>(); }
  std::uint64_t u64() { return little<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str(std::size_t max_size = 1 << 20) {
    const std::uint32_t size = u32();
    if (size > max_size) {
      throw std::runtime_error("BinaryReader: string length exceeds limit");
    }
    std::string s(size, '\0');
    raw(s.data(), size);
    return s;
  }
  void raw(void* data, std::size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (in_.gcount() != static_cast<std::streamsize>(size)) {
      throw std::runtime_error("BinaryReader: truncated input");
    }
  }
  bool at_eof() {
    return in_.peek() == std::istream::traits_type::eof();
  }

 private:
  template <typename T>
  T little() {
    std::uint8_t bytes[sizeof(T)];
    raw(bytes, sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(bytes[i]) << (8 * i)));
    }
    return v;
  }

  std::istream& in_;
};

}  // namespace tracer::util
