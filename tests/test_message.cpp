#include "net/message.h"

#include <gtest/gtest.h>

#include <string>

#include "net/channel.h"
#include "util/rng.h"

namespace tracer::net {
namespace {

// Rewrite a mutated frame's FNV-1a trailer so it passes the checksum gate
// and exercises the structural guards behind it.
void fix_checksum(std::vector<std::uint8_t>& frame) {
  const std::uint64_t digest = fnv1a(frame.data(), frame.size() - 8);
  for (int i = 0; i < 8; ++i) {
    frame[frame.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  }
}

TEST(Message, SerializeDeserializeRoundTrip) {
  Message original;
  original.type = MessageType::kConfigureTest;
  original.sequence = 42;
  original.set("rs", "4K");
  original.set_double("load", 0.3);
  original.set_u64("count", 123456789);
  const Message decoded = Message::deserialize(original.serialize());
  EXPECT_EQ(decoded, original);
}

TEST(Message, EmptyFieldsRoundTrip) {
  Message original;
  original.type = MessageType::kAck;
  original.sequence = 1;
  EXPECT_EQ(Message::deserialize(original.serialize()), original);
}

TEST(Message, TypedGetters) {
  Message message;
  message.set_double("d", 3.5);
  message.set_u64("u", 99);
  message.set("s", "text");
  EXPECT_DOUBLE_EQ(*message.get_double("d"), 3.5);
  EXPECT_EQ(*message.get_u64("u"), 99u);
  EXPECT_EQ(*message.get("s"), "text");
  EXPECT_FALSE(message.get("missing").has_value());
  EXPECT_FALSE(message.get_double("s").has_value());
  EXPECT_FALSE(message.get_u64("s").has_value());
}

TEST(Message, DoubleFieldsKeepPrecision) {
  Message message;
  message.set_double("v", 0.123456789);
  EXPECT_NEAR(*message.get_double("v"), 0.123456789, 1e-9);
}

TEST(Message, UnknownTypeRejected) {
  Message original = make_ack(1);
  auto frame = original.serialize();
  frame[0] = 0xFF;  // clobber the type field
  frame[1] = 0xFF;
  EXPECT_THROW(Message::deserialize(frame), std::runtime_error);
}

TEST(Message, TruncatedFrameRejected) {
  Message original;
  original.type = MessageType::kPerfResult;
  original.set("key", "value");
  auto frame = original.serialize();
  frame.resize(frame.size() - 3);
  EXPECT_THROW(Message::deserialize(frame), std::runtime_error);
}

TEST(Message, MakeAckAndError) {
  const Message ack = make_ack(7);
  EXPECT_EQ(ack.type, MessageType::kAck);
  EXPECT_EQ(ack.sequence, 7u);
  const Message error = make_error(9, "kaboom");
  EXPECT_EQ(error.type, MessageType::kError);
  EXPECT_EQ(*error.get("reason"), "kaboom");
}

TEST(Message, AllTypesHaveNames) {
  for (MessageType type : {
           MessageType::kAck, MessageType::kError,
           MessageType::kConfigureTest, MessageType::kStartTest,
           MessageType::kStopTest, MessageType::kPerfResult,
           MessageType::kProgress, MessageType::kPowerInit,
           MessageType::kPowerStart, MessageType::kPowerStop,
           MessageType::kPowerResult,
       }) {
    EXPECT_STRNE(to_string(type), "UNKNOWN");
  }
}

TEST(Message, BinaryFrameIsCompact) {
  const Message ack = make_ack(1);
  // type(2) + seq(4) + request_id(4) + count(4) + checksum(8) = 22 bytes.
  EXPECT_EQ(ack.serialize().size(), 22u);
}

TEST(Message, RequestIdRoundTrips) {
  Message original = make_ack(5);
  original.request_id = 987654;
  const Message decoded = Message::deserialize(original.serialize());
  EXPECT_EQ(decoded.request_id, 987654u);
  EXPECT_EQ(decoded, original);
}

TEST(Message, TryDeserializeMatchesDeserializeOnGoodFrames) {
  Message original;
  original.type = MessageType::kPerfResult;
  original.sequence = 11;
  original.request_id = 22;
  original.set("device", "raid5");
  original.set_double("iops", 1234.5);
  auto decoded = Message::try_deserialize(original.serialize());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(Message, TryDeserializeRejectsUndersizedFrames) {
  // Anything below the 22-byte header+checksum minimum is garbage.
  for (std::size_t size = 0; size < 22; ++size) {
    EXPECT_FALSE(
        Message::try_deserialize(std::vector<std::uint8_t>(size, 0)).has_value())
        << "accepted a " << size << "-byte frame";
  }
}

TEST(Message, TryDeserializeRejectsOversizedFrames) {
  std::vector<std::uint8_t> huge(kMaxFrameBytes + 1, 0);
  EXPECT_FALSE(Message::try_deserialize(huge).has_value());
}

TEST(Message, TryDeserializeRejectsHugeFieldCount) {
  // A frame whose header claims 2^32-ish fields must be rejected before
  // any allocation loop, not after.
  Message original = make_ack(1);
  auto frame = original.serialize();
  frame[10] = 0xFF;  // little-endian field count at offset 10
  frame[11] = 0xFF;
  frame[12] = 0xFF;
  frame[13] = 0xFF;
  fix_checksum(frame);  // get past the checksum to the count guard itself
  EXPECT_FALSE(Message::try_deserialize(frame).has_value());
}

TEST(Message, TryDeserializeRejectsTrailingGarbage) {
  Message original;
  original.type = MessageType::kProgress;
  original.set("k", "v");
  auto frame = original.serialize();
  frame.insert(frame.end() - 8, {0xDE, 0xAD});  // junk before the checksum
  fix_checksum(frame);  // valid digest over the padded body
  EXPECT_FALSE(Message::try_deserialize(frame).has_value());
}

// Fuzz: every single-bit flip anywhere in the frame must be caught — the
// FNV-1a trailer guarantees it (each step is a bijection on the digest).
// This is the property net::FaultyEndpoint's corrupt fault leans on.
TEST(MessageFuzz, EverySingleBitFlipIsRejected) {
  Message original;
  original.type = MessageType::kConfigureTest;
  original.sequence = 77;
  original.request_id = 88;
  original.set_u64("request_size", 4096);
  original.set_double("load_proportion", 0.7);
  const auto frame = original.serialize();
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto mutated = frame;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(Message::try_deserialize(mutated).has_value())
        << "bit " << bit << " flip slipped through";
  }
}

TEST(MessageFuzz, RandomTruncationsNeverDecode) {
  Message original;
  original.type = MessageType::kPerfResult;
  original.set("trace", "ws_4K_r100_rnd100");
  original.set_double("mbps", 512.25);
  const auto frame = original.serialize();
  for (std::size_t size = 0; size < frame.size(); ++size) {
    auto cut = frame;
    cut.resize(size);
    EXPECT_FALSE(Message::try_deserialize(cut).has_value())
        << "truncation to " << size << " bytes slipped through";
  }
}

TEST(MessageFuzz, RandomMessagesRoundTripThroughBytes) {
  util::Rng rng(20260807);
  for (int iteration = 0; iteration < 200; ++iteration) {
    Message original;
    original.type = MessageType::kProgress;
    original.sequence = static_cast<std::uint32_t>(rng.next());
    original.request_id = static_cast<std::uint32_t>(rng.next());
    const int field_count = static_cast<int>(rng.next() % 8);
    for (int f = 0; f < field_count; ++f) {
      std::string key = "k" + std::to_string(rng.next() % 1000);
      std::string value;
      const std::size_t len = rng.next() % 64;
      for (std::size_t c = 0; c < len; ++c) {
        value.push_back(static_cast<char>(rng.next() % 256));
      }
      original.set(key, value);  // arbitrary bytes, including NUL
    }
    auto decoded = Message::try_deserialize(original.serialize());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
  }
}

TEST(MessageFuzz, RandomByteNoiseNeverCrashesDecoder) {
  util::Rng rng(42424242);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::size_t size = rng.next() % 256;
    std::vector<std::uint8_t> noise(size);
    for (auto& byte : noise) byte = static_cast<std::uint8_t>(rng.next());
    // Random bytes essentially never carry a valid checksum; the point is
    // that decode returns (rather than throwing or crashing) every time.
    auto decoded = Message::try_deserialize(noise);
    if (decoded.has_value()) {
      // Astronomically unlikely, but if it happens it must re-serialize.
      EXPECT_EQ(Message::try_deserialize(decoded->serialize()), decoded);
    }
  }
}

}  // namespace
}  // namespace tracer::net
