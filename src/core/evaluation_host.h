// Evaluation host (§III-A1): the kernel control part. Owns the trace
// repository and the results database, builds peak traces on demand (via
// the synthetic generator), applies the proportional filter, runs replays,
// and stores one database record per test — the whole §III-B procedure as
// a library call.
//
// Sweeps fan out across a thread pool: each test gets its own simulator and
// its own array instance, the in-process analogue of Fig 3's multiple
// workload-generator machines and multi-channel power analyzers.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.h"

#include "core/metrics.h"
#include "core/replay_engine.h"
#include "db/database.h"
#include "storage/disk_array.h"
#include "trace/repository.h"
#include "trace/trace_source.h"
#include "trace/trace_view.h"
#include "workload/workload_mode.h"

namespace tracer::util {
class CancelToken;
}  // namespace tracer::util

namespace tracer::core {

class PowerChannel;

struct EvaluationOptions {
  Seconds collection_duration = 4.0;  ///< peak-trace collection window
  Seconds sampling_cycle = 1.0;
  std::size_t threads = 0;            ///< 0 = hardware concurrency
  std::uint64_t seed = 2024;
  /// Live per-cycle monitoring hook, forwarded to every replay. In sweeps
  /// this is called concurrently from worker threads.
  std::function<void(const CycleSnapshot&)> on_cycle;
};

/// One completed test plus the raw replay report backing its record.
struct TestResult {
  db::TestRecord record;
  ReplayReport report;
};

/// Per-index outcome of run_sweep: either the completed test or the error
/// that felled it. One failed test no longer discards the other slots.
struct SweepOutcome {
  std::optional<TestResult> result;  ///< engaged when the test completed
  std::string error;  ///< failure ("cancelled" for skipped slots) otherwise

  bool ok() const { return result.has_value(); }
};

class EvaluationHost {
 public:
  EvaluationHost(const storage::ArrayConfig& array,
                 std::filesystem::path repository_dir,
                 EvaluationOptions options = EvaluationOptions{});

  /// Fetch the peak trace for a mode from the repository, collecting it
  /// first (IOmeter-style saturation run + trace collector) when absent.
  /// Returns a copy; prefer peak_trace_shared on hot paths.
  trace::Trace peak_trace(const workload::WorkloadMode& mode);

  /// Shared, immutable peak trace for a mode. The 10 load levels of one
  /// workload mode (and every filter view derived from them) share ONE
  /// generated/parsed trace: a per-key shared_future guarantees the build
  /// happens exactly once even when run_sweep hammers the same key from
  /// many ThreadPool workers concurrently. Cached traces are immutable
  /// shared state — never mutate through the pointer (docs/MODELS.md).
  std::shared_ptr<const trace::Trace> peak_trace_shared(
      const workload::WorkloadMode& mode);

  /// How many times a peak trace was actually generated or parsed (cache
  /// misses). A 10-level sweep over one mode leaves this at 1.
  std::uint64_t peak_build_count() const { return peak_builds_.load(); }

  /// Number of peak traces currently cached in memory (ready or building).
  std::size_t peak_cache_size() const;

  /// Drop cached peak traces (repository files are untouched). Traces
  /// still referenced by in-flight tests stay alive via shared ownership.
  /// Safe against concurrent peak_trace_shared() calls: entries whose build
  /// is still in flight are kept, so late same-key requesters keep joining
  /// the one running build instead of racing a second build against it
  /// (two builders would write the same repository file concurrently).
  /// Returns the number of entries actually dropped.
  std::size_t clear_peak_cache();

  /// Run one test: filter the mode's peak trace to mode.load_proportion,
  /// replay on a fresh array instance, meter, record.
  TestResult run_test(const workload::WorkloadMode& mode);

  /// Replay an externally supplied trace (real-world workloads) at a load
  /// proportion. `trace_name` labels the database record.
  TestResult run_trace(const trace::Trace& trace, const std::string& trace_name,
                       double load_proportion);

  /// Replay a streaming source (e.g. a columnar on-disk trace from
  /// TraceRepository::load_source) at a load proportion — the
  /// bounded-memory twin of run_trace: the trace is never materialized,
  /// and produces bit-identical metrics to the in-memory path.
  TestResult run_source(std::shared_ptr<const trace::TraceSource> source,
                        const std::string& trace_name,
                        double load_proportion);

  /// Run a whole sweep in parallel; outcomes come back in input order. A
  /// throwing test yields a failed slot instead of aborting the sweep, so
  /// every completed result survives. Pass a CancelToken to stop early:
  /// not-yet-started slots come back with error "cancelled".
  std::vector<SweepOutcome> run_sweep(
      const std::vector<workload::WorkloadMode>& modes,
      util::CancelToken* cancel = nullptr);

  /// Install/replace the live monitoring hook (see EvaluationOptions).
  /// Not thread-safe with respect to concurrently running tests.
  void set_cycle_callback(std::function<void(const CycleSnapshot&)> hook) {
    options_.on_cycle = std::move(hook);
  }

  /// Source power numbers from an external channel (e.g. a
  /// RemotePowerChannel to a power-analyzer host) instead of the replay
  /// engine's own metering. Each test brackets its replay with
  /// start_window()/stop_window(); if either side fails, the test still
  /// completes, with record.power_valid=false and zeroed power/efficiency
  /// fields (graceful degradation — docs/RESILIENCE.md). The channel is
  /// borrowed, not owned; pass nullptr to go back to built-in metering.
  /// Not thread-safe with run_sweep: external analyzers measure one
  /// window at a time, so drive them from serial campaigns only.
  void set_power_channel(PowerChannel* channel) { power_channel_ = channel; }
  PowerChannel* power_channel() const { return power_channel_; }

  db::Database& database() { return database_; }
  const storage::ArrayConfig& array_config() const { return array_; }
  trace::TraceRepository& repository() { return repository_; }

 private:
  /// The one test body: filter (streamed, lazy) -> replay -> meter ->
  /// record. Views and columnar sources both funnel through here.
  TestResult replay_filtered(std::shared_ptr<const trace::TraceSource> peak,
                             const std::string& trace_name,
                             const workload::WorkloadMode& mode);

  /// Generate (saturation run) or load (repository) the peak trace for a
  /// key — the slow path behind the cache.
  trace::Trace build_peak_trace(const trace::TraceKey& key,
                                const workload::WorkloadMode& mode);

  storage::ArrayConfig array_;
  trace::TraceRepository repository_;
  EvaluationOptions options_;
  PowerChannel* power_channel_ = nullptr;  ///< borrowed; may be null
  db::Database database_;
  using SharedTrace = std::shared_ptr<const trace::Trace>;
  /// One cache slot per trace key. `generation` disambiguates entries that
  /// reuse a key after clear_peak_cache(): a builder cleaning up its own
  /// failed build must not evict a successor entry someone else installed.
  struct PeakCacheEntry {
    std::uint64_t generation = 0;
    std::shared_future<SharedTrace> future;
  };
  mutable util::Mutex cache_mutex_;  ///< guards peak_cache_ (not the builds)
  std::unordered_map<std::string, PeakCacheEntry> peak_cache_
      TRACER_GUARDED_BY(cache_mutex_);
  std::uint64_t cache_generation_ TRACER_GUARDED_BY(cache_mutex_) = 0;
  std::atomic<std::uint64_t> peak_builds_{0};
};

}  // namespace tracer::core
