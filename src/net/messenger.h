// Messenger module (§III-A1): the adapter between the evaluation host's
// control plane and a concrete power analyzer device. "TRACER is able to
// support various types of power analyzer devices with some modification on
// the messenger module" — the modification point is this one class.
//
// Serves POWER_INIT / POWER_START / POWER_STOP commands against a
// power::PowerAnalyzer and reports POWER_RESULT (current/voltage/watts).
#pragma once

#include "net/message.h"
#include "power/power_analyzer.h"

namespace tracer::net {

class Messenger {
 public:
  explicit Messenger(power::PowerAnalyzer& analyzer) : analyzer_(analyzer) {}

  /// Handle one command; returns the reply (ACK, POWER_RESULT, or ERROR).
  /// `now` is the current test clock, needed by start/stop.
  Message handle(const Message& command, Seconds now);

 private:
  Message power_result(std::uint32_t sequence) const;

  power::PowerAnalyzer& analyzer_;
  bool initialized_ = false;
  bool running_ = false;  ///< a measurement window is open (START..STOP)
};

}  // namespace tracer::net
