#include "core/interarrival_scaler.h"

#include <stdexcept>

namespace tracer::core {

trace::Trace InterarrivalScaler::scale(const trace::Trace& trace,
                                       double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("InterarrivalScaler: factor must be > 0");
  }
  trace::Trace out;
  out.device = trace.device;
  out.bunches.reserve(trace.bunches.size());
  for (const auto& bunch : trace.bunches) {
    trace::Bunch scaled = bunch;
    scaled.timestamp = bunch.timestamp / factor;
    out.bunches.push_back(std::move(scaled));
  }
  return out;
}

trace::TraceView InterarrivalScaler::scale(const trace::TraceView& view,
                                           double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("InterarrivalScaler: factor must be > 0");
  }
  return view.scaled(factor);
}

trace::Trace InterarrivalScaler::scale_to_duration(const trace::Trace& trace,
                                                   Seconds target_duration) {
  if (!(target_duration > 0.0)) {
    throw std::invalid_argument(
        "InterarrivalScaler: target duration must be > 0");
  }
  const Seconds duration = trace.duration();
  if (duration <= 0.0) return trace;  // single-instant traces can't stretch
  return scale(trace, duration / target_duration);
}

trace::TraceView InterarrivalScaler::scale_to_duration(
    const trace::TraceView& view, Seconds target_duration) {
  if (!(target_duration > 0.0)) {
    throw std::invalid_argument(
        "InterarrivalScaler: target duration must be > 0");
  }
  const Seconds duration = view.duration();
  if (duration <= 0.0) return view;  // single-instant traces can't stretch
  return view.scaled(duration / target_duration);
}

std::shared_ptr<const trace::TraceSource> InterarrivalScaler::scale(
    std::shared_ptr<const trace::TraceSource> source, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("InterarrivalScaler: factor must be > 0");
  }
  return trace::TraceSlice::scaled(std::move(source), factor);
}

std::shared_ptr<const trace::TraceSource> InterarrivalScaler::scale_to_duration(
    std::shared_ptr<const trace::TraceSource> source,
    Seconds target_duration) {
  if (!(target_duration > 0.0)) {
    throw std::invalid_argument(
        "InterarrivalScaler: target duration must be > 0");
  }
  if (source == nullptr) {
    throw std::invalid_argument("InterarrivalScaler: null source");
  }
  const Seconds duration = source->duration();
  if (duration <= 0.0) return source;  // single-instant traces can't stretch
  return trace::TraceSlice::scaled(std::move(source),
                                   duration / target_duration);
}

}  // namespace tracer::core
