#include "NoWallclockCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::tracer {

void NoWallclockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowlistFiles", AllowlistFiles);
}

void NoWallclockCheck::registerMatchers(MatchFinder *Finder) {
  // C-library wall-clock *sources*. Formatting helpers that only convert
  // an already-obtained time_t (gmtime_r, strftime) stay legal: the
  // invariant is about where time is read, not how labels are printed.
  // ::clock() measures CPU time, not wall time, but has burned enough
  // people mixing it with Seconds that it is banned alongside the others.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::time", "::gettimeofday",
                                              "::timespec_get", "::ftime",
                                              "::clock"))))
          .bind("wallcall"),
      this);

  // std::chrono::system_clock::now() / to_time_t / time_point<system_clock>
  // — catch the qualifier (`system_clock::now`), explicit template
  // arguments, and direct references to its static members.
  const auto SystemClock = cxxRecordDecl(hasName("::std::chrono::system_clock"));
  Finder->addMatcher(
      nestedNameSpecifierLoc(specifiesType(hasDeclaration(SystemClock)))
          .bind("wallqual"),
      this);
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(SystemClock)))).bind("walltype"),
      this);
  Finder->addMatcher(
      declRefExpr(to(decl(hasDeclContext(SystemClock)))).bind("wallref"),
      this);
}

void NoWallclockCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  StringRef What = "std::chrono::system_clock";
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("wallcall")) {
    Loc = Call->getBeginLoc();
    if (const FunctionDecl *FD = Call->getDirectCallee())
      What = FD->getName();
  } else if (const auto *Qual =
                 Result.Nodes.getNodeAs<NestedNameSpecifierLoc>("wallqual")) {
    Loc = Qual->getBeginLoc();
  } else if (const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("walltype")) {
    Loc = TL->getBeginLoc();
  } else if (const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("wallref")) {
    Loc = Ref->getBeginLoc();
  }
  if (Loc.isInvalid())
    return;
  const std::string File = locationFile(*Result.SourceManager, Loc);
  if (Result.SourceManager->isInSystemHeader(Loc) ||
      pathMatches(AllowlistFiles, File))
    return;
  diag(Loc, "wall-clock time source '%0' is banned: lease/heartbeat/"
            "simulation arithmetic must use util::MonotonicClock "
            "(util/clock.h); label-only uses need a justified NOLINT")
      << What;
}

} // namespace clang::tidy::tracer
