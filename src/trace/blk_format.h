// Binary ".replay" trace format (the blktrace-derived layout of Fig 4).
//
// Layout (little-endian):
//   magic "TRCR" | u16 version | str device
//   u64 bunch_count
//   per bunch: f64 timestamp | u32 package_count
//     per package: u64 sector | u32 bytes | u8 op
//
// Sanity limits guard against loading corrupted files into memory, and the
// declared counts are additionally validated against the remaining stream
// size before any allocation — a truncated or crafted header can never
// demand more memory than the bytes actually present could encode.
// Timestamps are validated at decode time (finite, >= 0): a NaN or
// negative arrival time must never reach the DES heap or the interarrival
// arithmetic (docs/TRACE_FORMAT.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace tracer::trace {

inline constexpr char kBlkMagic[4] = {'T', 'R', 'C', 'R'};
inline constexpr std::uint16_t kBlkVersion = 1;

/// Extension used by the trace repository, matching the paper's ".replay".
inline constexpr const char* kBlkExtension = ".replay";

/// Format sanity caps, shared by the v1 and v2 codecs: at most 2^32
/// bunches per trace (TraceView's u32 selection index range) and 2^20
/// packages per bunch.
inline constexpr std::uint64_t kMaxTraceBunches = 1ULL << 32;
inline constexpr std::uint32_t kMaxPackagesPerBunch = 1U << 20;

void write_blk(std::ostream& out, const Trace& trace);
void write_blk_file(const std::string& path, const Trace& trace);

/// Throws std::runtime_error on bad magic/version/truncation.
/// Reads each bunch's package array with one bulk read into a scratch
/// buffer (not per-field stream extraction) — the campaign-scale path.
Trace read_blk(std::istream& in);
Trace read_blk_file(const std::string& path);

/// Reference decoder: the original per-field streamed implementation.
/// Kept as the readable specification of the layout and as the baseline
/// the BM_BlkReadBulk micro-benchmark compares against; produces output
/// identical to read_blk.
Trace read_blk_streamed(std::istream& in);

/// Incremental v1 decoder for bounded-memory pipelines (v1 -> v2
/// conversion, large-trace synthesis checks): the header is parsed at
/// construction, then one bunch decodes per next() call — at no point is
/// more than one bunch resident. Applies the same validation as read_blk
/// (caps, stream-size bound, timestamp and op-code checks).
class BlkStreamReader {
 public:
  explicit BlkStreamReader(std::istream& in);

  const std::string& device() const { return device_; }
  std::uint64_t bunch_count() const { return bunch_count_; }

  /// Decode the next bunch into `out`; returns false when the declared
  /// count has been consumed. Throws std::runtime_error on corrupt data.
  bool next(Bunch& out);

 private:
  std::istream& in_;
  std::string device_;
  std::uint64_t bunch_count_ = 0;
  std::uint64_t next_index_ = 0;
  /// Bytes left in the stream (nullopt when unseekable); decremented as
  /// bunches decode so declared package counts are bounds-checked without
  /// re-seeking.
  std::optional<std::uint64_t> budget_;
  std::vector<unsigned char> scratch_;
};

/// Incremental v1 encoder: declares `bunch_count` up front, then streams
/// bunches one at a time — the writer half of bounded-memory conversion
/// and large-trace synthesis. finish() verifies the declared count was
/// delivered and the stream is healthy.
class BlkStreamWriter {
 public:
  BlkStreamWriter(std::ostream& out, const std::string& device,
                  std::uint64_t bunch_count);

  void add(const Bunch& bunch);
  void add(Seconds timestamp, const std::vector<IoPackage>& packages);

  /// Throws std::runtime_error if fewer/more bunches were added than
  /// declared or the underlying stream failed.
  void finish();

 private:
  std::ostream& out_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
  bool finished_ = false;
  std::vector<unsigned char> scratch_;
};

}  // namespace tracer::trace
