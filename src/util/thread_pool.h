// Fixed-size worker pool for fanning parameter sweeps across cores — the
// in-process analogue of the paper's Fig 3 distributed deployment, where
// multiple workload-generator machines drive independent arrays in parallel.
//
// Each submitted task is fully independent (its own Simulator instance), so
// the pool needs no work stealing; a mutex-guarded deque is sufficient and
// keeps the implementation auditable.
//
// Lock ownership (DESIGN.md §6e): mutex_ guards queue_. stopping_ is an
// atomic latch with an ordering contract documented at its declaration.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/cancel_token.h"
#include "util/sync.h"

namespace tracer::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// True once the destructor has begun shutdown; submit() refuses new
  /// work from that point on.
  bool stopping() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (first one wins), and a failure
  /// stops the sweep: indices whose task has not started yet are skipped
  /// rather than run against a doomed sweep. When `cancel` is non-null,
  /// cancellation likewise skips not-yet-started indices; the call then
  /// returns normally once in-flight tasks drain (callers observe the
  /// token to distinguish a cancelled sweep from a complete one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    CancelToken* cancel = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ TRACER_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar cv_;
  /// Shutdown latch. Ordering contract: the only store (destructor) is a
  /// release executed while holding mutex_, immediately before
  /// cv_.notify_all() — holding the mutex for the store is what makes the
  /// notify reliable (a worker between its predicate check and its wait
  /// would otherwise miss it). Reads take memory_order_acquire when made
  /// without the lock (stopping()); reads made under mutex_ (worker
  /// predicate, submit) may be relaxed because the locked store already
  /// ordered them.
  std::atomic<bool> stopping_{false};
};

}  // namespace tracer::util
