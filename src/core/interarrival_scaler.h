// Inter-arrival time scaling — the supplement to bunch filtering shown in
// the Fig 2 GUI: "I/O load intensity of a trace replay can be scaled either
// to 10%, 20%, 30% or 200%, 1000%, 1% of original intensity".
//
// Scaling intensity to s compresses (s > 1) or stretches (s < 1) the gaps
// between bunches by 1/s. Unlike the proportional filter this replays every
// request, so it can exceed 100 % intensity — and, unlike the filter, it
// changes the trace's temporal texture (the ablation bench quantifies
// this).
#pragma once

#include <memory>

#include "trace/trace.h"
#include "trace/trace_source.h"
#include "trace/trace_view.h"

namespace tracer::core {

class InterarrivalScaler {
 public:
  /// Scale intensity by `factor` in (0, +inf): timestamps divide by factor.
  static trace::Trace scale(const trace::Trace& trace, double factor);

  /// Zero-copy variant: no bunch is touched; the view remaps timestamps
  /// lazily at iteration time (TraceView::timestamp).
  static trace::TraceView scale(const trace::TraceView& view, double factor);

  /// Convenience: rescale so the trace spans `target_duration` seconds.
  static trace::Trace scale_to_duration(const trace::Trace& trace,
                                        Seconds target_duration);

  static trace::TraceView scale_to_duration(const trace::TraceView& view,
                                            Seconds target_duration);

  /// Streaming variants: lazy slices over any TraceSource, accumulating
  /// the time divisor exactly like the view path (bit-identical replay).
  static std::shared_ptr<const trace::TraceSource> scale(
      std::shared_ptr<const trace::TraceSource> source, double factor);

  static std::shared_ptr<const trace::TraceSource> scale_to_duration(
      std::shared_ptr<const trace::TraceSource> source,
      Seconds target_duration);
};

}  // namespace tracer::core
