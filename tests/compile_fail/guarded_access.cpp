// POSITIVE control for the thread-safety gate (tests/CMakeLists.txt): the
// same shape as unguarded_access.cpp but holding the mutex, so it must
// compile cleanly under -Werror=thread-safety. Together the pair proves
// the negative check fails for exactly the right reason.
#include "util/sync.h"

namespace {

class Guarded {
 public:
  int read() const {
    tracer::util::MutexLock lock(mutex_);
    return value_;
  }
  void write(int v) {
    tracer::util::MutexLock lock(mutex_);
    value_ = v;
  }

 private:
  mutable tracer::util::Mutex mutex_;
  int value_ TRACER_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded guarded;
  guarded.write(1);
  return guarded.read();
}
