#include "storage/raid.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace tracer::storage {
namespace {

RaidGeometry testbed_geometry(std::size_t disks = 6) {
  return RaidGeometry(RaidLevel::kRaid5, disks, 128 * kKiB,
                      500ULL * 1000 * 1000 * 1000);
}

TEST(RaidGeometry, RejectsInvalidConfigurations) {
  EXPECT_THROW(RaidGeometry(RaidLevel::kRaid5, 2, 128 * kKiB, kGiB),
               std::invalid_argument);
  EXPECT_THROW(RaidGeometry(RaidLevel::kRaid0, 0, 128 * kKiB, kGiB),
               std::invalid_argument);
  EXPECT_THROW(RaidGeometry(RaidLevel::kRaid5, 4, 0, kGiB),
               std::invalid_argument);
  EXPECT_THROW(RaidGeometry(RaidLevel::kRaid5, 4, 100, kGiB),
               std::invalid_argument);  // not sector multiple
  EXPECT_THROW(RaidGeometry(RaidLevel::kRaid5, 4, kMiB, 1024),
               std::invalid_argument);  // capacity < unit
}

TEST(RaidGeometry, CapacityExcludesParity) {
  const auto geometry = testbed_geometry(6);
  EXPECT_EQ(geometry.data_disks(), 5u);
  EXPECT_EQ(geometry.capacity(), geometry.rows() * geometry.stripe_unit * 5);

  RaidGeometry raid0(RaidLevel::kRaid0, 6, 128 * kKiB,
                     500ULL * 1000 * 1000 * 1000);
  EXPECT_EQ(raid0.data_disks(), 6u);
  EXPECT_GT(raid0.capacity(), geometry.capacity());
}

TEST(RaidGeometry, ParityRotatesThroughAllDisks) {
  const auto geometry = testbed_geometry(6);
  std::set<std::size_t> parity_disks;
  for (std::uint64_t row = 0; row < 6; ++row) {
    const std::size_t pd = geometry.parity_disk(row);
    EXPECT_LT(pd, 6u);
    parity_disks.insert(pd);
  }
  EXPECT_EQ(parity_disks.size(), 6u);  // left-symmetric full rotation
  EXPECT_EQ(geometry.parity_disk(0), 5u);
  EXPECT_EQ(geometry.parity_disk(1), 4u);
  EXPECT_EQ(geometry.parity_disk(6), 5u);  // period = disk count
}

TEST(RaidGeometry, Raid0HasNoParityDisk) {
  RaidGeometry raid0(RaidLevel::kRaid0, 4, 128 * kKiB, kGiB);
  EXPECT_THROW(raid0.parity_disk(0), std::logic_error);
}

TEST(RaidGeometry, MapSplitsAtStripeUnitBoundaries) {
  const auto geometry = testbed_geometry(6);
  // 300 KB starting 64 KB into unit 0: 64K + 128K + 108K.
  const auto extents = geometry.map(64 * kKiB, 300 * kKiB);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].bytes, 64 * kKiB);
  EXPECT_EQ(extents[1].bytes, 128 * kKiB);
  EXPECT_EQ(extents[2].bytes, 108 * kKiB);
  EXPECT_EQ(extents[0].offset_in_unit, 64 * kKiB);
  EXPECT_EQ(extents[1].offset_in_unit, 0u);
}

TEST(RaidGeometry, MapRejectsBeyondCapacity) {
  const auto geometry = testbed_geometry(6);
  EXPECT_THROW(geometry.map(geometry.capacity() - 4096, 8192),
               std::out_of_range);
}

TEST(RaidGeometry, DataNeverLandsOnParityDisk) {
  const auto geometry = testbed_geometry(6);
  for (std::uint64_t unit = 0; unit < 600; ++unit) {
    const auto extents =
        geometry.map(unit * geometry.stripe_unit, geometry.stripe_unit);
    ASSERT_EQ(extents.size(), 1u);
    EXPECT_NE(extents[0].disk, geometry.parity_disk(extents[0].row));
  }
}

TEST(RaidGeometry, RowFillsEveryNonParityDiskExactlyOnce) {
  const auto geometry = testbed_geometry(6);
  for (std::uint64_t row = 0; row < 20; ++row) {
    std::set<std::size_t> disks;
    for (std::size_t position = 0; position < geometry.data_disks();
         ++position) {
      const Bytes addr =
          (row * geometry.data_disks() + position) * geometry.stripe_unit;
      const auto extents = geometry.map(addr, geometry.stripe_unit);
      ASSERT_EQ(extents.size(), 1u);
      EXPECT_EQ(extents[0].row, row);
      disks.insert(extents[0].disk);
    }
    disks.insert(geometry.parity_disk(row));
    EXPECT_EQ(disks.size(), geometry.disk_count);  // full coverage, no dup
  }
}

TEST(RaidGeometry, MappingIsInjectivePerDiskSector) {
  // Property: distinct logical units never collide on (disk, sector).
  const auto geometry = testbed_geometry(5);
  std::map<std::pair<std::size_t, Sector>, Bytes> seen;
  for (std::uint64_t unit = 0; unit < 1000; ++unit) {
    const Bytes addr = unit * geometry.stripe_unit;
    const auto extents = geometry.map(addr, geometry.stripe_unit);
    ASSERT_EQ(extents.size(), 1u);
    const auto key = std::make_pair(extents[0].disk, extents[0].sector);
    ASSERT_EQ(seen.count(key), 0u) << "collision at logical unit " << unit;
    seen[key] = addr;
  }
}

TEST(RaidGeometry, MapPreservesTotalBytes) {
  const auto geometry = testbed_geometry(6);
  // Property sweep over odd sizes and offsets.
  for (Bytes offset : {0ULL, 512ULL, 4096ULL, 130048ULL, 262144ULL}) {
    for (Bytes size : {512ULL, 4096ULL, 65536ULL, 131072ULL, 1048576ULL}) {
      const auto extents = geometry.map(offset, size);
      Bytes total = 0;
      for (const auto& extent : extents) total += extent.bytes;
      EXPECT_EQ(total, size);
    }
  }
}

TEST(RaidGeometry, ParityExtentMatchesRowAndOffset) {
  const auto geometry = testbed_geometry(6);
  const auto parity = geometry.parity_extent(3, 4096, 8192);
  EXPECT_EQ(parity.disk, geometry.parity_disk(3));
  EXPECT_EQ(parity.sector, (3 * geometry.stripe_unit + 4096) / kSectorSize);
  EXPECT_EQ(parity.bytes, 8192u);
  EXPECT_EQ(parity.row, 3u);
}

TEST(RaidGeometry, SequentialUnitsRotateAcrossDisks) {
  // Consecutive logical units in one row land on distinct disks (striping).
  const auto geometry = testbed_geometry(6);
  std::set<std::size_t> disks;
  for (std::size_t position = 0; position < geometry.data_disks();
       ++position) {
    const auto extents = geometry.map(position * geometry.stripe_unit,
                                      geometry.stripe_unit);
    disks.insert(extents[0].disk);
  }
  EXPECT_EQ(disks.size(), geometry.data_disks());
}

}  // namespace
}  // namespace tracer::storage
