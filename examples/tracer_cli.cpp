// Example: a command-line front end speaking the GUI line protocol —
// the evaluation-host control surface without the Windows GUI. Commands
// come from stdin (or a script via shell redirection), are translated by
// net::Parser into wire messages, and drive an EvaluationHost.
//
//   CONFIGURE_TEST rs=16K rnd=50 rd=25 load=60
//   START_TEST
//   CONFIGURE_TEST rs=4K rnd=100 rd=0 load=100
//   START_TEST
//   STOP_TEST
//
// Every completed test prints its database record; STOP_TEST (or EOF)
// exports the session database to tracer_results.csv.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/remote.h"
#include "net/parser.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace tracer;

  const std::string device = argc > 1 ? argv[1] : "hdd";
  storage::ArrayConfig config = device == "ssd"
                                    ? storage::ArrayConfig::ssd_testbed(4)
                                    : storage::ArrayConfig::hdd_testbed(6);

  core::EvaluationOptions options;
  options.collection_duration = 3.0;
  core::EvaluationHost host(
      config, std::filesystem::temp_directory_path() / "tracer-cli",
      options);
  core::WorkloadGeneratorService service(host);

  std::printf("TRACER CLI — array %s. Commands: CONFIGURE_TEST rs=<size> "
              "rnd=<pct> rd=<pct> load=<pct> | START_TEST | STOP_TEST\n",
              config.name.c_str());

  std::string line;
  std::uint32_t sequence = 1;
  while (std::getline(std::cin, line)) {
    if (util::trim(line).empty()) continue;
    net::Message command;
    try {
      command = net::Parser::parse_command(line);
    } catch (const std::exception& e) {
      std::printf("! %s\n", e.what());
      continue;
    }
    // The GUI convention: percentages on the wire, ratios in the record.
    if (command.type == net::MessageType::kConfigureTest) {
      net::Message translated = command;
      std::uint64_t size = 0;
      if (auto rs = command.get("rs");
          !rs || !util::parse_size(*rs, size)) {
        std::printf("! CONFIGURE_TEST needs rs=<size>\n");
        continue;
      }
      translated.fields.clear();
      translated.set_u64("request_size", size);
      translated.set_double("random_ratio",
                            command.get_double("rnd").value_or(0.0) / 100.0);
      translated.set_double("read_ratio",
                            command.get_double("rd").value_or(0.0) / 100.0);
      translated.set_double(
          "load_proportion",
          command.get_double("load").value_or(100.0) / 100.0);
      command = translated;
    }
    command.sequence = sequence++;

    const net::Message reply = service.handle(command);
    std::printf("< %s\n", net::Parser::format_message(reply).c_str());
    if (command.type == net::MessageType::kStopTest) break;
  }

  const std::string csv = "tracer_results.csv";
  host.database().export_csv(csv);
  std::printf("%zu records written to %s\n", host.database().size(),
              csv.c_str());
  return 0;
}
