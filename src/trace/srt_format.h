// HP SRT trace format ("trace files with the extension name srt", §III-A2).
//
// The cello96/cello99 distributions are disk I/O logs from HP-UX servers.
// We implement the textual SRT rendering used by HP's trace tools: one
// record per line,
//   <time_sec> <device> <start_byte> <size_byte> <R|W>
// with '#' comment lines. The transformer (srt→.replay) groups records
// whose arrival times fall within a concurrency window into bunches,
// matching how blktrace batches concurrent submissions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace tracer::trace {

struct SrtRecord {
  Seconds time = 0.0;
  std::string device;
  Bytes start_byte = 0;
  Bytes size = 0;
  OpType op = OpType::kRead;

  friend bool operator==(const SrtRecord&, const SrtRecord&) = default;
};

/// Parse SRT text. Malformed lines raise std::runtime_error with the line
/// number; blank and comment lines are skipped.
std::vector<SrtRecord> parse_srt(std::istream& in);
std::vector<SrtRecord> parse_srt_file(const std::string& path);

void write_srt(std::ostream& out, const std::vector<SrtRecord>& records);
void write_srt_file(const std::string& path,
                    const std::vector<SrtRecord>& records);

/// The trace format transformer: SRT records -> blktrace-style Trace.
/// Records closer together than `bunch_window` seconds join one bunch.
/// Records must be time-sorted (SRT files are); out-of-order input throws.
Trace srt_to_blk(const std::vector<SrtRecord>& records,
                 Seconds bunch_window = 0.5e-3,
                 const std::string& device = "srt-import");

}  // namespace tracer::trace
