// Exponential backoff with jitter — the retry pacing policy shared by the
// campaign runner (re-running failed tests) and the net RPC layer
// (re-transmitting lost requests). Deterministic given its seed, so retry
// schedules replay bit-for-bit in tests.
//
// delay(attempt) = base * multiplier^attempt, capped at `cap`, then
// jittered uniformly in [1 - jitter, 1 + jitter]. Jitter decorrelates a
// fleet of clients hammering one recovering peer (the classic thundering
// herd); attempt counts are 0-based.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"
#include "util/types.h"

namespace tracer::util {

class Backoff {
 public:
  struct Params {
    Seconds base = 0.05;      ///< delay before the first retry
    double multiplier = 2.0;  ///< growth factor per attempt
    Seconds cap = 5.0;        ///< upper bound on the un-jittered delay
    double jitter = 0.0;      ///< relative jitter in [0, 1); 0 = none
  };

  // A default *argument* of Params{} is ill-formed here (its member
  // initializers are not usable until the enclosing class is complete), so
  // the all-defaults case gets a delegating constructor instead.
  Backoff() : Backoff(Params{}) {}
  explicit Backoff(Params params, std::uint64_t seed = 1)
      : params_(params), rng_(seed) {}

  /// Delay before retry number `attempt` (0-based: the wait after the
  /// first failure is delay(0)).
  Seconds delay(int attempt) {
    Seconds d = params_.base;
    for (int i = 0; i < attempt && d < params_.cap; ++i) {
      d *= params_.multiplier;
    }
    d = std::min(d, params_.cap);
    if (params_.jitter > 0.0) {
      d *= rng_.uniform(1.0 - params_.jitter, 1.0 + params_.jitter);
    }
    return std::max(d, 0.0);
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
};

}  // namespace tracer::util
