// Fig 8: I/O throughput (IOPS, MBPS) as a function of configured load
// proportion, with the load-control accuracy curve. Workload mode matches
// the paper: request size 4 KB, random ratio 50 %, read ratio 0 %.
// Paper finding: measured proportions track configured ones with error
// under 0.5 % because the collected trace has constant request size.
#include "bench_common.h"

#include "core/metrics.h"
#include "obs/registry.h"

int main() {
  using namespace tracer;
  bench::print_header(
      "Fig 8 — throughput and load-control accuracy vs configured load",
      "4 KB / rnd 50 % / rd 0 %: accuracy error < 0.5 % (fixed request size)");

  // Accuracy is statistics-limited: the expected load-proportion error is
  // ~1/sqrt(selected packages), so matching the paper's <0.5 % needs a
  // paper-scale trace (theirs: ~400k packages / 50k bunches). Collect for
  // one simulated hour at this mode's ~126 IOPS to reach that scale.
  core::EvaluationOptions options = bench::bench_options();
  options.collection_duration = 3600.0;
  core::EvaluationHost host(storage::ArrayConfig::hdd_testbed(6),
                            bench::bench_repository_dir() / "accuracy",
                            options);

  workload::WorkloadMode mode;
  mode.request_size = 4 * kKiB;
  mode.random_ratio = 0.50;
  mode.read_ratio = 0.0;

  // Baseline: 100 % replay of the peak trace (T(f) in eq. 1).
  mode.load_proportion = 1.0;
  const core::TestResult base = host.run_test(mode);

  util::Table table({"configured %", "IOPS", "MBPS", "LP(iops) %",
                     "LP(mbps) %", "A(iops)", "A(mbps)"});
  double max_error = 0.0;
  for (double load : bench::load_levels()) {
    mode.load_proportion = load;
    const core::TestResult result =
        load >= 1.0 ? base : host.run_test(mode);
    const core::LoadControlRow row = core::make_load_control_row(
        load, base.record.iops, base.record.mbps, result.record.iops,
        result.record.mbps);
    max_error = std::max({max_error, std::abs(row.accuracy_iops - 1.0),
                          std::abs(row.accuracy_mbps - 1.0)});
    table.row()
        .add(static_cast<int>(load * 100))
        .add(result.record.iops, 1)
        .add(result.record.mbps, 3)
        .add(row.measured_iops_lp * 100.0, 3)
        .add(row.measured_mbps_lp * 100.0, 3)
        .add(row.accuracy_iops, 5)
        .add(row.accuracy_mbps, 5)
        .done();
  }
  table.print(std::cout);
  std::printf("max accuracy error: %.3f %%\n", max_error * 100.0);
  // Every replay above went through the engine, which publishes its late-
  // schedule count to obs; any non-zero total means an event was clamped
  // into the present and the accuracy numbers are built on drifted timing.
  const std::uint64_t late =
      obs::Registry::global().counter("replay.events_late").value();
  if (late != 0) {
    std::fprintf(stderr, "FATAL: %llu late schedules across replays\n",
                 static_cast<unsigned long long>(late));
    return 1;
  }
  bench::print_verdict(max_error < 0.02,
                       "load-control error small for fixed request size "
                       "(paper: <0.5 %, ours: <2 % budget for queue noise)");
  return 0;
}
