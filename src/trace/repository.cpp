#include "trace/repository.h"

#include <algorithm>
#include <stdexcept>

#include "trace/blk_format.h"
#include "util/string_util.h"

namespace tracer::trace {

std::string TraceKey::file_name() const {
  return device + "_rs" + util::format_size(request_size) + "_rnd" +
         std::to_string(random_pct) + "_rd" + std::to_string(read_pct) +
         kBlkExtension;
}

std::optional<TraceKey> TraceKey::parse(const std::string& file_name) {
  if (!util::ends_with(file_name, kBlkExtension)) return std::nullopt;
  const std::string stem =
      file_name.substr(0, file_name.size() - std::string(kBlkExtension).size());
  // Split from the right: the device label may itself contain '_'.
  const auto parts = util::split(stem, '_');
  if (parts.size() < 4) return std::nullopt;
  const std::string& rd = parts[parts.size() - 1];
  const std::string& rnd = parts[parts.size() - 2];
  const std::string& rs = parts[parts.size() - 3];
  if (!util::starts_with(rs, "rs") || !util::starts_with(rnd, "rnd") ||
      !util::starts_with(rd, "rd")) {
    return std::nullopt;
  }
  TraceKey key;
  std::uint64_t size = 0;
  std::uint64_t random_pct = 0;
  std::uint64_t read_pct = 0;
  if (!util::parse_size(rs.substr(2), size) ||
      !util::parse_u64(rnd.substr(3), random_pct) || random_pct > 100 ||
      !util::parse_u64(rd.substr(2), read_pct) || read_pct > 100) {
    return std::nullopt;
  }
  key.request_size = size;
  key.random_pct = static_cast<int>(random_pct);
  key.read_pct = static_cast<int>(read_pct);
  for (std::size_t i = 0; i + 3 < parts.size(); ++i) {
    if (i) key.device += '_';
    key.device += parts[i];
  }
  if (key.device.empty()) return std::nullopt;
  return key;
}

TraceRepository::TraceRepository(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path TraceRepository::path_for(const TraceKey& key) const {
  return directory_ / key.file_name();
}

void TraceRepository::store(const TraceKey& key, const Trace& trace) const {
  write_blk_file(path_for(key).string(), trace);
}

bool TraceRepository::contains(const TraceKey& key) const {
  return std::filesystem::exists(path_for(key));
}

Trace TraceRepository::load(const TraceKey& key) const {
  const auto path = path_for(key);
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("TraceRepository: no trace " + key.file_name());
  }
  return read_blk_file(path.string());
}

std::vector<TraceKey> TraceRepository::list() const {
  std::vector<std::pair<std::string, TraceKey>> found;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (auto key = TraceKey::parse(name)) {
      found.emplace_back(name, *key);
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceKey> keys;
  keys.reserve(found.size());
  for (auto& [name, key] : found) keys.push_back(std::move(key));
  return keys;
}

}  // namespace tracer::trace
