// Move-only callable with small-buffer storage — the DES kernel's event
// type. std::function heap-allocates every closure larger than its tiny
// internal buffer (two pointers on libstdc++), which puts one malloc/free
// pair on the simulator's hot path per scheduled event. SmallFunction
// stores closures up to `Capacity` bytes inline; larger ones fall back to
// the heap so arbitrary callables still work.
//
// `fits_inline<F>` is a compile-time predicate, so hot paths can
// static_assert that their event closures never allocate (replay_engine.cpp
// does exactly that for the replay event kinds).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tracer::util {

template <typename Signature, std::size_t Capacity = 112>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  /// True when a (decayed) callable of type F is stored inline: it fits the
  /// buffer, is no more aligned than max_align_t, and can be relocated
  /// without throwing (required because moves must be noexcept).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      vtable_ = &inline_vtable<D>;
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &heap_vtable<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  /// True when the stored callable lives in the inline buffer (no heap).
  bool stored_inline() const { return vtable_ != nullptr && vtable_->inline_stored; }

  R operator()(Args... args) {
    return vtable_->invoke(buffer_, std::forward<Args>(args)...);
  }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_stored;
  };

  template <typename F>
  static constexpr VTable inline_vtable = {
      [](void* self, Args&&... args) -> R {
        return (*std::launder(static_cast<F*>(self)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(static_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* self) noexcept { std::launder(static_cast<F*>(self))->~F(); },
      true,
  };

  template <typename F>
  static constexpr VTable heap_vtable = {
      [](void* self, Args&&... args) -> R {
        return (**std::launder(static_cast<F**>(self)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F** from = std::launder(static_cast<F**>(src));
        ::new (dst) F*(*from);
      },
      [](void* self) noexcept { delete *std::launder(static_cast<F**>(self)); },
      false,
  };

  void move_from(SmallFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(buffer_, other.buffer_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace tracer::util
