// Wire protocol between the evaluation host, the workload generator, and
// the power analyzer (§III-A1: communicator / messenger / parser modules).
//
// A message is a typed command or report with a string key-value payload,
// serialised to a length-prefixed little-endian frame. The testbed ran
// these over TCP between three machines (Fig 1); in-process the same frames
// flow over net::Channel, so the control plane is exercised byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tracer::net {

enum class MessageType : std::uint16_t {
  kAck = 0,
  kError = 1,
  // Evaluation host -> workload generator
  kConfigureTest = 10,  ///< workload mode + load proportion
  kStartTest = 11,
  kStopTest = 12,
  // Workload generator -> evaluation host
  kPerfResult = 20,  ///< IOPS / MBPS / response time
  kProgress = 21,    ///< per-cycle progress during a run
  // Evaluation host -> power analyzer (via messenger)
  kPowerInit = 30,
  kPowerStart = 31,
  kPowerStop = 32,
  // Power analyzer -> evaluation host
  kPowerResult = 40,  ///< current / voltage / watts
};

const char* to_string(MessageType type);

struct Message {
  MessageType type = MessageType::kAck;
  std::uint32_t sequence = 0;  ///< request/reply correlation
  std::map<std::string, std::string> fields;

  /// Typed field helpers; get_* return nullopt when absent or malformed.
  void set(const std::string& key, const std::string& value);
  void set_double(const std::string& key, double value);
  void set_u64(const std::string& key, std::uint64_t value);
  std::optional<std::string> get(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<std::uint64_t> get_u64(const std::string& key) const;

  std::vector<std::uint8_t> serialize() const;
  /// Throws std::runtime_error on malformed frames.
  static Message deserialize(const std::vector<std::uint8_t>& frame);

  friend bool operator==(const Message&, const Message&) = default;
};

/// Convenience constructors for the common replies.
Message make_ack(std::uint32_t sequence);
Message make_error(std::uint32_t sequence, const std::string& reason);

}  // namespace tracer::net
