#include "trace/collector.h"

#include <stdexcept>
#include <utility>

namespace tracer::trace {

TraceCollector::TraceCollector(std::string device, Seconds bunch_window)
    : device_(std::move(device)), bunch_window_(bunch_window) {
  trace_.device = device_;
}

void TraceCollector::on_submit(Seconds t, const storage::IoRequest& request) {
  if (have_first_ && t < last_time_) {
    throw std::logic_error("TraceCollector: submissions must be time-ordered");
  }
  if (!have_first_) {
    first_time_ = t;
    have_first_ = true;
  }
  last_time_ = t;
  const Seconds rel = t - first_time_;

  IoPackage pkg;
  pkg.sector = request.sector;
  pkg.bytes = request.bytes;
  pkg.op = request.op;
  ++packages_;

  if (!trace_.bunches.empty() &&
      rel - trace_.bunches.back().timestamp <= bunch_window_) {
    trace_.bunches.back().packages.push_back(pkg);
    return;
  }
  Bunch bunch;
  bunch.timestamp = rel;
  bunch.packages.push_back(pkg);
  trace_.bunches.push_back(std::move(bunch));
}

Trace TraceCollector::finish() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.device = device_;
  have_first_ = false;
  packages_ = 0;
  return out;
}

}  // namespace tracer::trace
