#include "util/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tracer::util {
namespace {

TEST(BinaryIo, RoundTripsScalars) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.f64(-123.456);
  writer.str("hello");

  BinaryReader reader(buffer);
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(reader.f64(), -123.456);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_TRUE(reader.at_eof());
}

TEST(BinaryIo, LittleEndianLayout) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.u32(0x01020304);
  const std::string bytes = buffer.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(BinaryIo, SpecialDoubles) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.f64(0.0);
  writer.f64(std::numeric_limits<double>::infinity());
  writer.f64(1e-300);
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.f64(), 0.0);
  EXPECT_EQ(reader.f64(), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(reader.f64(), 1e-300);
}

TEST(BinaryIo, EmptyString) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.str("");
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.str(), "");
}

TEST(BinaryIo, TruncatedInputThrows) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.u16(7);
  BinaryReader reader(buffer);
  EXPECT_NO_THROW(reader.u8());
  EXPECT_NO_THROW(reader.u8());
  EXPECT_THROW(reader.u8(), std::runtime_error);
}

TEST(BinaryIo, OversizedStringRejected) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  writer.u32(1 << 30);  // bogus length prefix
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.str(/*max_size=*/1024), std::runtime_error);
}

TEST(BinaryIo, RawBlock) {
  std::stringstream buffer;
  BinaryWriter writer(buffer);
  const char data[] = {'T', 'R', 'C', 'R'};
  writer.raw(data, sizeof(data));
  BinaryReader reader(buffer);
  char out[4];
  reader.raw(out, sizeof(out));
  EXPECT_EQ(std::memcmp(out, data, 4), 0);
}

}  // namespace
}  // namespace tracer::util
