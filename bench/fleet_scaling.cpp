// Fleet coordination scaling (docs/FLEET.md): the same synthetic campaign
// sharded across 1/2/4/8 in-process workers, plus the price of failure —
// steal-recovery latency when a worker is killed mid-shard.
//
// The executor sleeps a fixed 500us per test, standing in for real replay
// work that blocks rather than burns CPU, so worker-count scaling is
// visible even on the 1-core container (docs/PERF.md): sleeps overlap,
// coordination overhead does not. The interesting outputs are the scaling
// ratio (how close to ideal the lease/shard machinery lets the fleet get)
// and max_steal_recovery (how long a killed worker's tests were in limbo).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/campaign_coordinator.h"
#include "core/campaign_worker.h"
#include "net/communicator.h"

namespace {

using namespace tracer;

constexpr std::size_t kTests = 1000;
constexpr auto kTestWork = std::chrono::microseconds(500);

db::TestRecord synth_record(const workload::WorkloadMode& mode) {
  std::this_thread::sleep_for(kTestWork);
  db::TestRecord r;
  r.timestamp = "1970-01-01T00:00:00";
  r.device = "sim-array";
  r.trace_name = "synthetic";
  r.request_size = mode.request_size;
  r.random_ratio = mode.random_ratio;
  r.read_ratio = mode.read_ratio;
  r.load_proportion = mode.load_proportion;
  r.avg_watts = 12.0 + mode.load_proportion;
  r.power_valid = true;
  r.iops = 1000.0 * mode.load_proportion;
  r.iops_per_watt = r.iops / r.avg_watts;
  return r;
}

std::vector<workload::WorkloadMode> make_matrix(std::size_t n) {
  std::vector<workload::WorkloadMode> matrix;
  matrix.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workload::WorkloadMode mode;
    mode.request_size = 512 << (i % 6);
    mode.random_ratio = static_cast<double>(i % 5) / 4.0;
    mode.read_ratio = static_cast<double>(i % 3) / 2.0;
    mode.load_proportion = 0.2 + 0.2 * static_cast<double>(i % 4);
    matrix.push_back(mode);
  }
  return matrix;
}

struct FleetRun {
  core::FleetReport report;
  double wall_s = 0.0;
};

/// Run the campaign over `worker_count` clean in-process links; worker
/// `kill_victim` (if >= 0) dies silently after `kill_after` executions.
FleetRun run_fleet(std::size_t worker_count, int kill_victim,
                   std::uint64_t kill_after) {
  const auto dir =
      std::filesystem::temp_directory_path() / "tracer_fleet_bench";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto matrix = make_matrix(kTests);

  std::vector<std::unique_ptr<net::Communicator>> coordinator_side;
  std::vector<core::CampaignCoordinator::WorkerLink> links;
  std::vector<std::unique_ptr<core::CampaignWorkerService>> services;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < worker_count; ++i) {
    auto [coord_end, worker_end] = net::make_channel();
    coordinator_side.push_back(
        std::make_unique<net::Communicator>(std::move(coord_end)));
    links.push_back(
        {"w" + std::to_string(i), coordinator_side.back().get()});
    core::WorkerOptions options;
    options.renew_interval = 0.1;
    if (kill_victim >= 0 && i == static_cast<std::size_t>(kill_victim)) {
      options.kill_switch = [kill_after](std::uint64_t n) {
        return n >= kill_after;
      };
    }
    services.push_back(std::make_unique<core::CampaignWorkerService>(
        synth_record, options));
    auto comm =
        std::make_shared<net::Communicator>(std::move(worker_end));
    threads.emplace_back(
        [service = services.back().get(), comm] { service->serve(*comm); });
  }

  core::CoordinatorOptions options;
  options.lease_duration = 1.0;
  options.shard_size = 32;
  core::CampaignCoordinator coordinator(
      core::CampaignIdentity{"fleet-bench", 0}, dir / "journal.csv", links,
      options);
  const auto start = std::chrono::steady_clock::now();
  FleetRun run;
  run.report = coordinator.run(matrix);
  run.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  coordinator.stop_workers();
  for (auto& thread : threads) thread.join();
  std::filesystem::remove_all(dir);
  return run;
}

}  // namespace

int main() {
  bench::print_header(
      "fleet_scaling: campaign wall-clock vs worker count",
      "sharding a campaign across workers should cut wall-clock near-"
      "linearly while lease overhead stays small");

  util::Table table({"workers", "wall_s", "speedup", "shards", "complete"});
  double base = 0.0;
  std::vector<double> walls;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const FleetRun run = run_fleet(workers, -1, 0);
    if (workers == 1) base = run.wall_s;
    walls.push_back(run.wall_s);
    table.row()
        .add(static_cast<std::uint64_t>(workers))
        .add(run.wall_s, 3)
        .add(base / run.wall_s, 2)
        .add(static_cast<std::uint64_t>(run.report.leases_granted))
        .add(run.report.complete ? "yes" : "NO")
        .done();
  }
  table.print(std::cout);

  // Failure price: worker 1 of 4 dies ~200 tests in; how long were its
  // in-flight tests in limbo before a stolen re-execution journaled them?
  const FleetRun chaos = run_fleet(4, /*kill_victim=*/1, /*kill_after=*/200);
  std::printf(
      "\nsteal recovery (4 workers, 1 killed mid-shard): "
      "max %.3f s from steal to journaled re-execution "
      "(lease %.1f s, %llu stolen, complete=%s)\n",
      chaos.report.max_steal_recovery, 1.0,
      static_cast<unsigned long long>(chaos.report.leases_stolen),
      chaos.report.complete ? "yes" : "NO");

  const bool scaled = walls.front() > walls.back() * 1.5;
  bench::print_verdict(scaled && chaos.report.complete,
                       "8 workers beat 1 worker by >1.5x and the killed-"
                       "worker campaign still completed every test");
  return scaled && chaos.report.complete ? 0 : 1;
}
