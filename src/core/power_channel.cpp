#include "core/power_channel.h"

#include <string>

#include "net/message.h"
#include "util/logging.h"

namespace tracer::core {

std::optional<PowerReading> decode_power_result(const net::Message& message) {
  if (message.type != net::MessageType::kPowerResult) return std::nullopt;
  const auto channels = message.get_u64("channels");
  if (!channels) return std::nullopt;
  PowerReading reading;
  double volts_sum = 0.0;
  for (std::uint64_t ch = 0; ch < *channels; ++ch) {
    const std::string prefix = "ch" + std::to_string(ch) + ".";
    const auto watts = message.get_double(prefix + "watts");
    const auto joules = message.get_double(prefix + "joules");
    const auto volts = message.get_double(prefix + "volts");
    const auto amps = message.get_double(prefix + "amps");
    if (!watts || !joules || !volts || !amps) return std::nullopt;
    // Channels clamp separate supply lines of one system under test (Fig
    // 3), so power-like quantities add; volts is reported as the mean.
    reading.avg_watts += *watts;
    reading.joules += *joules;
    reading.avg_amps += *amps;
    volts_sum += *volts;
  }
  if (*channels > 0) {
    reading.avg_volts = volts_sum / static_cast<double>(*channels);
  }
  return reading;
}

net::CallOptions RemotePowerChannel::call_options() {
  net::CallOptions options;
  options.attempt_timeout = options_.timeout;
  options.max_attempts = options_.max_attempts;
  options.backoff = options_.backoff;
  options.on_attempt_failure = [this](int attempts_made) {
    if (!comm_.peer_closed()) return true;  // timeout: plain retry
    if (!reconnect_) return false;
    TRACER_LOG(kWarn) << "power: analyzer link lost after attempt "
                      << attempts_made << ", reconnecting";
    if (!reconnect_()) return false;
    // The analyzer process behind the new link may be a fresh one; make
    // the next window re-INIT rather than trusting stale session state.
    initialized_ = false;
    return true;
  };
  return options;
}

std::optional<net::Message> RemotePowerChannel::call_checked(
    net::MessageType type) {
  net::Message command;
  command.type = type;
  auto reply = comm_.call(std::move(command), call_options());
  if (!reply) {
    TRACER_LOG(kWarn) << "power: no reply to " << net::to_string(type)
                      << ", degrading";
    return std::nullopt;
  }
  if (reply->type == net::MessageType::kError) {
    const auto detail = reply->get("error");
    TRACER_LOG(kWarn) << "power: " << net::to_string(type) << " failed: "
                      << (detail ? *detail : std::string("unknown error"));
    return std::nullopt;
  }
  return reply;
}

bool RemotePowerChannel::start_window() {
  if (!initialized_) {
    if (!call_checked(net::MessageType::kPowerInit)) return false;
    initialized_ = true;
  }
  return call_checked(net::MessageType::kPowerStart).has_value();
}

std::optional<PowerReading> RemotePowerChannel::stop_window() {
  auto reply = call_checked(net::MessageType::kPowerStop);
  if (!reply) return std::nullopt;
  auto reading = decode_power_result(*reply);
  if (!reading) {
    TRACER_LOG(kWarn) << "power: malformed POWER_RESULT, degrading";
  }
  return reading;
}

}  // namespace tracer::core
