// Fuzz target: net::Message::try_deserialize must reject every malformed
// frame by returning nullopt — never by crashing, over-reading, or
// throwing — and every frame it accepts must survive a serialize /
// re-deserialize round trip bit-identically (the PR 9 wire-precision
// contract, extended to the whole frame).
//
// Built as a libFuzzer binary under Clang (-fsanitize=fuzzer,address) and
// as a corpus-replay binary everywhere else (fuzz/standalone_driver.cpp).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "net/message.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> frame(data, data + size);
  const auto message = tracer::net::Message::try_deserialize(frame);
  if (!message) return 0;

  // Accepted frames must round-trip: re-encode, re-decode, compare.
  const auto reencoded = message->serialize();
  const auto again = tracer::net::Message::try_deserialize(reencoded);
  if (!again || !(*again == *message)) std::abort();
  return 0;
}
