// CSV reading/writing for experiment output and the results database's
// export path. RFC-4180-ish: quotes fields containing commas/quotes/newlines.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tracer::util {

/// Streaming CSV writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience for mixed numeric/string rows.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& add(std::string_view s);
    RowBuilder& add(double v, int precision = 6);
    /// %.17g: round-trips every finite double exactly. Use this (not a
    /// display precision) whenever the row will be parsed back — journals
    /// and databases are codecs, not reports (tracer-lossless-double-format
    /// in docs/STATIC_ANALYSIS.md).
    RowBuilder& add_lossless(double v);
    RowBuilder& add(std::uint64_t v);
    RowBuilder& add(std::int64_t v);
    void done();

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder row() { return RowBuilder(*this); }

 private:
  static std::string escape(std::string_view field);
  std::ostream& out_;
};

/// Whole-file CSV reader (experiment result files are small).
class CsvReader {
 public:
  /// Parse CSV text into rows of fields. Handles quoted fields with embedded
  /// commas, escaped quotes (""), and CRLF line endings.
  static std::vector<std::vector<std::string>> parse(std::string_view text);

  /// Load and parse a file; throws std::runtime_error when unreadable.
  static std::vector<std::vector<std::string>> load(const std::string& path);
};

}  // namespace tracer::util
