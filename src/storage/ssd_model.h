// SLC solid-state disk model calibrated to the testbed's Memoright 32 GB
// SLC drives (Table II, §VI-G).
//
// Service model: `channels` independent flash channels share the device's
// aggregate bandwidth. A request stripes internally across
// ceil(bytes / internal_stripe) channels (capped at `channels`), so one
// large request reaches full device rate while small requests run
// concurrently at per-channel rate; total bandwidth is conserved either
// way. Non-sequential writes pay a write-amplification multiplier (FTL
// garbage-collection cost). No mechanical latency, so random access barely
// degrades service compared to an HDD — exactly the §VI-G contrast.
// Power: 3.5 W idle (stated in the paper), plus per-operation read/program
// pulses that stack across concurrently active channels.
#pragma once

#include <deque>
#include <string>

#include "power/power_timeline.h"
#include "storage/block_device.h"
#include "storage/mech_types.h"
#include "util/rng.h"

namespace tracer::storage {

struct SsdParams {
  std::string name = "memoright-slc-32g";
  Bytes capacity = 32ULL * 1000 * 1000 * 1000;
  std::size_t channels = 4;
  Bytes internal_stripe = 32 * kKiB;   ///< per-channel striping granule
  Seconds command_overhead = 60.0e-6;  ///< per-request controller time
  double read_rate_mbps = 120.0;       ///< per-device sequential read
  double write_rate_mbps = 130.0;      ///< SLC program is slightly faster
  double random_write_amplification = 2.0;  ///< FTL GC multiplier (2008-era
                                             ///< SLC without TRIM, cf. [19])
  double random_read_penalty = 1.10;   ///< mapping lookup overhead
  Watts idle_watts = 3.5;              ///< §VI-G: 3.5 W average idle
  Watts read_extra_watts = 1.3;        ///< active read above idle
  Watts write_extra_watts = 2.1;       ///< program current above idle
};

class SsdModel final : public BlockDevice {
 public:
  SsdModel(sim::Simulator& sim, const SsdParams& params, std::uint64_t seed);

  // BlockDevice
  Bytes capacity() const override { return params_.capacity; }
  void submit(const IoRequest& request, CompletionCallback done) override;
  std::size_t outstanding() const override {
    return queue_.size() + active_requests_;
  }
  /// Worst case one single-channel request in service per channel.
  std::size_t max_concurrent_events() const override {
    return params_.channels + 1;
  }

  // PowerSource
  std::string name() const override { return params_.name; }
  Watts power_at(Seconds t) const override { return timeline_.power_at(t); }
  Joules energy_until(Seconds t) override { return timeline_.energy_until(t); }

  const SsdParams& params() const { return params_; }
  std::uint64_t completed_requests() const { return completed_; }

 private:
  struct Pending {
    IoRequest request;
    CompletionCallback done;
    Seconds submit_time;
  };

  void start(Pending pending);
  void maybe_dispatch();
  std::size_t channels_for(Bytes bytes) const;

  SsdParams params_;
  util::Rng rng_;
  power::PowerTimeline timeline_;
  std::deque<Pending> queue_;
  std::size_t busy_channels_ = 0;
  std::size_t active_requests_ = 0;
  // Sequential-detection state shared with the batch planners
  // (mech_batch.h); advances per dispatched request.
  SsdMechState mech_;
  std::uint64_t completed_ = 0;
};

}  // namespace tracer::storage
