// Example: the Fig 3 distributed deployment in miniature. An evaluation
// host drives two workload-generator services — each owning its own disk
// array — over message channels, exactly as the testbed ran them over TCP.
// Each service runs on its own thread; results flow back as PERF_RESULT
// frames and land in one results table.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>

#include "core/remote.h"
#include "util/table.h"

int main() {
  using namespace tracer;

  const auto repo =
      std::filesystem::temp_directory_path() / "tracer-distributed";
  core::EvaluationOptions options;
  options.collection_duration = 3.0;

  // Two storage systems under test, one per "workload generator machine".
  core::EvaluationHost hdd_host(storage::ArrayConfig::hdd_testbed(6),
                                repo / "hdd", options);
  core::EvaluationHost ssd_host(storage::ArrayConfig::ssd_testbed(4),
                                repo / "ssd", options);

  auto [hdd_client_end, hdd_server_end] = net::make_channel();
  auto [ssd_client_end, ssd_server_end] = net::make_channel();
  net::Communicator hdd_client(std::move(hdd_client_end));
  net::Communicator hdd_server(std::move(hdd_server_end));
  net::Communicator ssd_client(std::move(ssd_client_end));
  net::Communicator ssd_server(std::move(ssd_server_end));

  core::WorkloadGeneratorService hdd_service(hdd_host);
  core::WorkloadGeneratorService ssd_service(ssd_host);
  std::thread hdd_thread([&] { hdd_service.serve(hdd_server); });
  std::thread ssd_thread([&] { ssd_service.serve(ssd_server); });

  core::RemoteWorkloadClient hdd_remote(hdd_client);
  core::RemoteWorkloadClient ssd_remote(ssd_client);

  util::Table table({"host", "mode", "IOPS", "MBPS", "watts", "IOPS/Watt"});
  workload::WorkloadMode mode;
  mode.request_size = 16 * kKiB;
  mode.read_ratio = 0.5;
  mode.random_ratio = 0.5;

  for (double load : {0.3, 0.6, 1.0}) {
    mode.load_proportion = load;
    for (auto* remote : {&hdd_remote, &ssd_remote}) {
      if (!remote->configure(mode)) {
        std::fprintf(stderr, "configure failed\n");
        return 1;
      }
      const auto record = remote->start(/*timeout=*/600.0);
      if (!record) {
        std::fprintf(stderr, "start failed\n");
        return 1;
      }
      table.row()
          .add(record->device)
          .add(mode.to_string())
          .add(record->iops, 1)
          .add(record->mbps, 2)
          .add(record->avg_watts, 1)
          .add(record->iops_per_watt, 3)
          .done();
    }
  }

  hdd_remote.stop();
  ssd_remote.stop();
  hdd_thread.join();
  ssd_thread.join();

  std::printf("distributed evaluation over message channels (Fig 3):\n");
  table.print(std::cout);
  std::printf("\nlocal databases: hdd=%zu records, ssd=%zu records\n",
              hdd_host.database().size(), ssd_host.database().size());
  return 0;
}
