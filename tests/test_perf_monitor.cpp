#include "core/perf_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace tracer::core {
namespace {

storage::IoCompletion completion(Seconds submit, Seconds finish, Bytes bytes,
                                 OpType op = OpType::kRead) {
  return storage::IoCompletion{0, submit, finish, bytes, op};
}

TEST(PerfMonitor, EmptyReportIsZero) {
  PerfMonitor monitor;
  const PerfReport report = monitor.report();
  EXPECT_EQ(report.completions, 0u);
  EXPECT_EQ(report.iops, 0.0);
  EXPECT_EQ(report.mbps, 0.0);
  EXPECT_EQ(report.avg_response_ms, 0.0);
}

TEST(PerfMonitor, RatesOverExplicitWindow) {
  PerfMonitor monitor;
  for (int i = 0; i < 100; ++i) {
    monitor.on_complete(
        completion(i * 0.1, i * 0.1 + 0.005, 1000000));  // 1 MB each
  }
  const PerfReport report = monitor.report(10.0);
  EXPECT_EQ(report.completions, 100u);
  EXPECT_DOUBLE_EQ(report.iops, 10.0);
  EXPECT_DOUBLE_EQ(report.mbps, 10.0);
  EXPECT_DOUBLE_EQ(report.duration, 10.0);
}

TEST(PerfMonitor, DefaultWindowIsLastCompletion) {
  PerfMonitor monitor;
  monitor.on_complete(completion(0.0, 2.0, 500));
  monitor.on_complete(completion(1.0, 4.0, 500));
  const PerfReport report = monitor.report();
  EXPECT_DOUBLE_EQ(report.duration, 4.0);
  EXPECT_DOUBLE_EQ(report.iops, 0.5);
}

TEST(PerfMonitor, ResponseTimeStatistics) {
  PerfMonitor monitor;
  monitor.on_complete(completion(0.0, 0.010, 512));  // 10 ms
  monitor.on_complete(completion(0.0, 0.020, 512));  // 20 ms
  monitor.on_complete(completion(0.0, 0.030, 512));  // 30 ms
  const PerfReport report = monitor.report(1.0);
  EXPECT_NEAR(report.avg_response_ms, 20.0, 1e-9);
  EXPECT_NEAR(report.max_response_ms, 30.0, 1e-9);
  // p95 interpolates within the log-scale bin holding the 30 ms sample
  // (~6% wide at 40 bins/decade).
  EXPECT_GE(report.p95_response_ms, 20.0);
  EXPECT_LE(report.p95_response_ms, 35.0);
}

// Regression: the old linear 5 ms-bin histogram put every sub-5 ms latency
// in bin 0, so SSD-class p95s came back as ~4.x ms regardless of the data.
// The log-scale histogram must track the exact percentile to one bin ratio
// (10^(1/40) ~= 6%) across both SSD (sub-ms) and HDD (tens of ms) regimes.
TEST(PerfMonitor, P95TracksExactPercentileAcrossRegimes) {
  for (const double scale_ms : {0.2, 8.0, 300.0}) {
    PerfMonitor monitor;
    std::mt19937_64 rng(42);
    std::lognormal_distribution<double> dist(std::log(scale_ms), 0.5);
    std::vector<double> exact;
    exact.reserve(5000);
    for (int i = 0; i < 5000; ++i) {
      const double ms = dist(rng);
      exact.push_back(ms);
      monitor.on_complete(completion(0.0, ms / 1e3, 512));
    }
    std::sort(exact.begin(), exact.end());
    const double exact_p95 = exact[static_cast<std::size_t>(
        0.95 * (exact.size() - 1))];
    const double p95 = monitor.report(1.0).p95_response_ms;
    EXPECT_NEAR(p95 / exact_p95, 1.0, 0.08)
        << "scale " << scale_ms << " ms: histogram p95 " << p95
        << " vs exact " << exact_p95;
  }
}

TEST(PerfMonitor, SeriesBinsBySamplingCycle) {
  PerfMonitor monitor(1.0);
  monitor.on_complete(completion(0.0, 0.5, 2000000));
  monitor.on_complete(completion(0.0, 0.6, 2000000));
  monitor.on_complete(completion(0.0, 2.5, 2000000));
  const PerfReport report = monitor.report(3.0);
  ASSERT_EQ(report.iops_series.size(), 3u);
  EXPECT_DOUBLE_EQ(report.iops_series[0], 2.0);
  EXPECT_DOUBLE_EQ(report.iops_series[1], 0.0);
  EXPECT_DOUBLE_EQ(report.iops_series[2], 1.0);
  EXPECT_DOUBLE_EQ(report.mbps_series[0], 4.0);
}

TEST(PerfMonitor, CustomCycleWidth) {
  PerfMonitor monitor(0.5);
  monitor.on_complete(completion(0.0, 0.25, 1000000));
  const PerfReport report = monitor.report(0.5);
  ASSERT_EQ(report.iops_series.size(), 1u);
  EXPECT_DOUBLE_EQ(report.iops_series[0], 2.0);  // 1 op / 0.5 s
}

TEST(PerfMonitor, ResetClearsEverything) {
  PerfMonitor monitor;
  monitor.on_complete(completion(0.0, 1.0, 512));
  monitor.reset();
  EXPECT_EQ(monitor.completions(), 0u);
  const PerfReport report = monitor.report();
  EXPECT_EQ(report.completions, 0u);
  EXPECT_TRUE(report.iops_series.empty());
}

TEST(PerfMonitor, MbpsUsesDecimalMegabytes) {
  PerfMonitor monitor;
  monitor.on_complete(completion(0.0, 0.5, 1000000));
  EXPECT_DOUBLE_EQ(monitor.report(1.0).mbps, 1.0);
}

}  // namespace
}  // namespace tracer::core
