#include "storage/raid_controller.h"

#include <algorithm>
#include <stdexcept>

namespace tracer::storage {

struct RaidController::Transaction {
  // The merged extent this transaction services.
  Sector sector = 0;
  Bytes bytes = 0;
  OpType op = OpType::kRead;
  // Original requests completing together when the merged op finishes.
  std::vector<Waiting> members;
  std::size_t pending = 0;  // children in flight
  // Row-local RMW bookkeeping: when a row's reads finish, its writes go out.
  struct RowPhase {
    std::size_t reads_pending = 0;
    std::vector<IoRequest> deferred_writes;
    std::vector<std::size_t> deferred_disks;
  };
  std::map<std::uint64_t, RowPhase> rows;
};

RaidController::RaidController(sim::Simulator& sim, RaidGeometry geometry,
                               std::vector<BlockDevice*> disks,
                               Seconds dispatch_overhead,
                               bool merge_contiguous)
    : BlockDevice(sim),
      geometry_(std::move(geometry)),
      disks_(std::move(disks)),
      dispatch_overhead_(dispatch_overhead),
      merge_contiguous_(merge_contiguous),
      max_merge_bytes_(geometry_.stripe_unit * geometry_.data_disks()) {
  if (disks_.size() != geometry_.disk_count) {
    throw std::invalid_argument(
        "RaidController: disk list does not match geometry");
  }
  for (auto* disk : disks_) {
    if (disk == nullptr) {
      throw std::invalid_argument("RaidController: null member disk");
    }
    if (disk->capacity() < geometry_.disk_capacity) {
      throw std::invalid_argument(
          "RaidController: member disk smaller than geometry expects");
    }
  }
}

Watts RaidController::power_at(Seconds t) const {
  Watts total = 0.0;
  for (const auto* disk : disks_) total += disk->power_at(t);
  return total;
}

Joules RaidController::energy_until(Seconds t) {
  Joules total = 0.0;
  for (auto* disk : disks_) total += disk->energy_until(t);
  return total;
}

void RaidController::submit(const IoRequest& request, CompletionCallback done) {
  if (request.bytes == 0) {
    throw std::invalid_argument("RaidController: zero-byte request");
  }
  if (request.sector * kSectorSize + request.bytes > capacity()) {
    throw std::out_of_range("RaidController: request beyond capacity");
  }
  ++outstanding_;
  batch_.push_back(Waiting{request, std::move(done), sim_.now()});
  if (!dispatch_scheduled_) {
    dispatch_scheduled_ = true;
    sim_.schedule_in(dispatch_overhead_, [this] { dispatch_batch(); });
  }
}

void RaidController::dispatch_batch() {
  dispatch_scheduled_ = false;
  std::vector<Waiting> batch = std::move(batch_);
  batch_.clear();
  if (batch.empty()) return;

  if (!merge_contiguous_ || batch.size() == 1) {
    for (auto& waiting : batch) {
      std::vector<Waiting> single;
      single.push_back(std::move(waiting));
      execute(std::move(single));
    }
    return;
  }

  // Elevator merge: sort by (op, sector) and coalesce contiguous runs of
  // the same direction, capped at one stripe width.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Waiting& a, const Waiting& b) {
                     if (a.request.op != b.request.op) {
                       return a.request.op < b.request.op;
                     }
                     return a.request.sector < b.request.sector;
                   });
  std::vector<Waiting> run;
  Bytes run_bytes = 0;
  auto flush_run = [&] {
    if (!run.empty()) {
      if (run.size() > 1) ++stats_.merged_batches;
      execute(std::move(run));
      run.clear();
      run_bytes = 0;
    }
  };
  for (auto& waiting : batch) {
    const bool continues =
        !run.empty() && waiting.request.op == run.back().request.op &&
        waiting.request.sector == run.back().request.end_sector() &&
        run_bytes + waiting.request.bytes <= max_merge_bytes_;
    if (!continues) flush_run();
    run_bytes += waiting.request.bytes;
    run.push_back(std::move(waiting));
  }
  flush_run();
}

void RaidController::execute(std::vector<Waiting> members) {
  auto txn = std::make_shared<Transaction>();
  txn->sector = members.front().request.sector;
  txn->op = members.front().request.op;
  Bytes bytes = 0;
  for (const auto& member : members) bytes += member.request.bytes;
  txn->bytes = bytes;
  txn->members = std::move(members);

  if (txn->op == OpType::kRead) {
    stats_.logical_reads += txn->members.size();
    issue_read(txn);
  } else {
    stats_.logical_writes += txn->members.size();
    issue_write(txn);
  }
}

void RaidController::fail_disk(std::size_t disk) {
  if (geometry_.level != RaidLevel::kRaid5) {
    throw std::logic_error("fail_disk: degraded mode needs RAID-5");
  }
  if (disk >= disks_.size()) {
    throw std::out_of_range("fail_disk: no such member");
  }
  if (failed_disk_ >= 0) {
    throw std::logic_error(
        "fail_disk: a member is already failed (double fault loses data)");
  }
  failed_disk_ = static_cast<std::ptrdiff_t>(disk);
}

void RaidController::restore_disk(std::size_t disk) {
  if (failed_disk_ != static_cast<std::ptrdiff_t>(disk)) {
    throw std::logic_error("restore_disk: that member is not failed");
  }
  failed_disk_ = -1;
}

void RaidController::issue_read(const std::shared_ptr<Transaction>& txn) {
  const Bytes logical_byte = txn->sector * kSectorSize;
  const auto extents = geometry_.map(logical_byte, txn->bytes);

  // Count children first (reconstructed extents fan out to n-1 reads).
  std::size_t total = 0;
  for (const auto& extent : extents) {
    total += failed_disk_ == static_cast<std::ptrdiff_t>(extent.disk)
                 ? disks_.size() - 1
                 : 1;
  }
  txn->pending = total;
  stats_.child_reads += total;

  for (const auto& extent : extents) {
    if (failed_disk_ == static_cast<std::ptrdiff_t>(extent.disk)) {
      // Degraded read: XOR of the same extent range on every surviving
      // member (each member stores its unit of the row at the same
      // disk-local sectors, so the addresses coincide).
      ++stats_.reconstructed_reads;
      for (std::size_t d = 0; d < disks_.size(); ++d) {
        if (static_cast<std::ptrdiff_t>(d) == failed_disk_) continue;
        issue_child(d, extent.sector, extent.bytes, OpType::kRead, txn);
      }
    } else {
      issue_child(extent.disk, extent.sector, extent.bytes, OpType::kRead,
                  txn);
    }
  }
}

void RaidController::issue_write(const std::shared_ptr<Transaction>& txn) {
  const Bytes logical_byte = txn->sector * kSectorSize;
  const auto extents = geometry_.map(logical_byte, txn->bytes);

  if (geometry_.level == RaidLevel::kRaid0) {
    txn->pending = extents.size();
    stats_.child_writes += extents.size();
    for (const auto& extent : extents) {
      issue_child(extent.disk, extent.sector, extent.bytes, OpType::kWrite,
                  txn);
    }
    return;
  }

  // RAID-5: group extents per stripe row and pick full-stripe vs RMW.
  struct RowPlan {
    std::vector<const RaidGeometry::Extent*> extents;
    Bytes bytes = 0;
    Bytes min_offset = ~0ULL;
    Bytes max_end = 0;
  };
  std::map<std::uint64_t, RowPlan> row_plans;
  for (const auto& extent : extents) {
    RowPlan& plan = row_plans[extent.row];
    plan.extents.push_back(&extent);
    plan.bytes += extent.bytes;
    plan.min_offset = std::min(plan.min_offset, extent.offset_in_unit);
    plan.max_end =
        std::max(plan.max_end, extent.offset_in_unit + extent.bytes);
  }

  // Plan children per row, accounting for a failed member, then count them
  // all before issuing so completions cannot race the loop.
  struct RowChildren {
    std::vector<RaidGeometry::Extent> phase1_reads;
    std::vector<RaidGeometry::Extent> writes;  // deferred iff reads exist
  };
  std::map<std::uint64_t, RowChildren> row_children;
  const Bytes full_row = geometry_.stripe_unit * geometry_.data_disks();
  auto disk_failed = [this](std::size_t disk) {
    return failed_disk_ == static_cast<std::ptrdiff_t>(disk);
  };

  for (auto& [row, plan] : row_plans) {
    RowChildren& children = row_children[row];
    const std::size_t pd = geometry_.parity_disk(row);
    const Bytes span = plan.max_end - plan.min_offset;
    const auto parity = geometry_.parity_extent(row, plan.min_offset, span);

    if (plan.bytes == full_row) {
      // Full-stripe write: parity computed in-core, no reads. A failed
      // member simply receives nothing.
      ++stats_.full_stripe_writes;
      for (const auto* extent : plan.extents) {
        if (!disk_failed(extent->disk)) children.writes.push_back(*extent);
      }
      const auto full_parity =
          geometry_.parity_extent(row, 0, geometry_.stripe_unit);
      if (!disk_failed(pd)) children.writes.push_back(full_parity);
      continue;
    }

    if (disk_failed(pd)) {
      // Parity member is gone: data writes land directly, nothing to
      // maintain until rebuild.
      for (const auto* extent : plan.extents) {
        children.writes.push_back(*extent);
      }
      continue;
    }

    const RaidGeometry::Extent* failed_extent = nullptr;
    for (const auto* extent : plan.extents) {
      if (disk_failed(extent->disk)) failed_extent = extent;
    }

    ++stats_.rmw_rows;
    if (failed_extent != nullptr) {
      // Reconstruct-write: the target unit's member is gone, so new parity
      // must be recomputed from the surviving data units over the span.
      for (std::size_t d = 0; d < disks_.size(); ++d) {
        if (disk_failed(d) || d == pd) continue;
        RaidGeometry::Extent read_extent = parity;  // same row-local range
        read_extent.disk = d;
        children.phase1_reads.push_back(read_extent);
      }
      for (const auto* extent : plan.extents) {
        if (!disk_failed(extent->disk)) children.writes.push_back(*extent);
      }
      children.writes.push_back(parity);
    } else {
      // Classic read-modify-write.
      for (const auto* extent : plan.extents) {
        children.phase1_reads.push_back(*extent);
      }
      children.phase1_reads.push_back(parity);
      for (const auto* extent : plan.extents) {
        children.writes.push_back(*extent);
      }
      children.writes.push_back(parity);
    }
  }

  std::size_t total_children = 0;
  for (auto& [row, children] : row_children) {
    total_children += children.phase1_reads.size() + children.writes.size();
  }
  txn->pending = total_children;
  if (total_children == 0) {
    // Degenerate degraded corner: nothing physical to do (e.g. the only
    // touched data unit and the parity are both the failed member's span).
    txn->pending = 1;
    sim_.schedule_in(0.0, [this, txn] { child_done(txn); });
    return;
  }

  for (auto& [row, children] : row_children) {
    if (children.phase1_reads.empty()) {
      stats_.child_writes += children.writes.size();
      for (const auto& extent : children.writes) {
        issue_child(extent.disk, extent.sector, extent.bytes, OpType::kWrite,
                    txn);
      }
      continue;
    }

    auto& phase = txn->rows[row];
    phase.reads_pending = children.phase1_reads.size();
    for (const auto& extent : children.writes) {
      phase.deferred_writes.push_back(
          IoRequest{0, extent.sector, extent.bytes, OpType::kWrite});
      phase.deferred_disks.push_back(extent.disk);
    }

    auto on_row_read = [this, txn, row_key = row](const IoCompletion&) {
      auto& row_phase = txn->rows[row_key];
      if (--row_phase.reads_pending == 0) {
        stats_.child_writes += row_phase.deferred_writes.size();
        for (std::size_t i = 0; i < row_phase.deferred_writes.size(); ++i) {
          const IoRequest& w = row_phase.deferred_writes[i];
          issue_child(row_phase.deferred_disks[i], w.sector, w.bytes, w.op,
                      txn);
        }
      }
      child_done(txn);
    };
    stats_.child_reads += children.phase1_reads.size();
    for (const auto& extent : children.phase1_reads) {
      IoRequest read_req{next_child_id_++, extent.sector, extent.bytes,
                         OpType::kRead};
      disks_[extent.disk]->submit(read_req, on_row_read);
    }
  }
}

void RaidController::issue_child(std::size_t disk, Sector sector, Bytes bytes,
                                 OpType op,
                                 const std::shared_ptr<Transaction>& txn) {
  IoRequest child{next_child_id_++, sector, bytes, op};
  disks_[disk]->submit(child,
                       [this, txn](const IoCompletion&) { child_done(txn); });
}

void RaidController::child_done(const std::shared_ptr<Transaction>& txn) {
  if (--txn->pending == 0) {
    const Seconds finish = sim_.now();
    outstanding_ -= txn->members.size();
    for (auto& member : txn->members) {
      IoCompletion completion{member.request.id, member.submit_time, finish,
                              member.request.bytes, member.request.op};
      member.done(completion);
    }
  }
}

}  // namespace tracer::storage
