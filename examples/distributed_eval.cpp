// Example: the Fig 3 distributed deployment in miniature. An evaluation
// host drives two workload-generator services — each owning its own disk
// array — over message channels, exactly as the testbed ran them over TCP.
// Each service runs on its own thread; results flow back as PERF_RESULT
// frames and land in one results table.
//
// Each remote is driven through a CampaignRunner, so the distributed
// campaign gets the same failure semantics as the local one: a test that
// fails on the wire is retried, then isolated to a single failed slot
// instead of sinking the whole run.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "core/campaign.h"
#include "core/remote.h"
#include "util/table.h"

int main() {
  using namespace tracer;

  const auto repo =
      std::filesystem::temp_directory_path() / "tracer-distributed";
  core::EvaluationOptions options;
  options.collection_duration = 3.0;

  // Two storage systems under test, one per "workload generator machine".
  core::EvaluationHost hdd_host(storage::ArrayConfig::hdd_testbed(6),
                                repo / "hdd", options);
  core::EvaluationHost ssd_host(storage::ArrayConfig::ssd_testbed(4),
                                repo / "ssd", options);

  auto [hdd_client_end, hdd_server_end] = net::make_channel();
  auto [ssd_client_end, ssd_server_end] = net::make_channel();
  net::Communicator hdd_client(std::move(hdd_client_end));
  net::Communicator hdd_server(std::move(hdd_server_end));
  net::Communicator ssd_client(std::move(ssd_client_end));
  net::Communicator ssd_server(std::move(ssd_server_end));

  core::WorkloadGeneratorService hdd_service(hdd_host);
  core::WorkloadGeneratorService ssd_service(ssd_host);
  std::thread hdd_thread([&] { hdd_service.serve(hdd_server); });
  std::thread ssd_thread([&] { ssd_service.serve(ssd_server); });

  core::RemoteWorkloadClient hdd_remote(hdd_client);
  core::RemoteWorkloadClient ssd_remote(ssd_client);

  workload::WorkloadMode base;
  base.request_size = 16 * kKiB;
  base.read_ratio = 0.5;
  base.random_ratio = 0.5;
  std::vector<workload::WorkloadMode> modes;
  for (double load : {0.3, 0.6, 1.0}) {
    workload::WorkloadMode mode = base;
    mode.load_proportion = load;
    modes.push_back(mode);
  }

  // One runner per remote; a generator channel serves one test at a time,
  // so each runner drives its remote single-threaded while the two remotes
  // proceed in parallel — Fig 3's multi-machine concurrency.
  auto remote_executor = [](core::RemoteWorkloadClient& remote) {
    return [&remote](const workload::WorkloadMode& mode) {
      if (!remote.configure(mode)) {
        throw std::runtime_error("remote: configure failed");
      }
      const auto record = remote.start(/*timeout=*/600.0);
      if (!record) throw std::runtime_error("remote: start failed");
      return *record;
    };
  };
  core::CampaignOptions campaign_options;
  campaign_options.threads = 1;
  campaign_options.max_retries = 1;
  core::CampaignRunner hdd_runner(remote_executor(hdd_remote),
                                  hdd_host.array_config().name,
                                  campaign_options);
  core::CampaignRunner ssd_runner(remote_executor(ssd_remote),
                                  ssd_host.array_config().name,
                                  campaign_options);

  core::CampaignReport hdd_report;
  core::CampaignReport ssd_report;
  std::thread hdd_campaign([&] { hdd_report = hdd_runner.run(modes); });
  std::thread ssd_campaign([&] { ssd_report = ssd_runner.run(modes); });
  hdd_campaign.join();
  ssd_campaign.join();

  hdd_remote.stop();
  ssd_remote.stop();
  hdd_thread.join();
  ssd_thread.join();

  util::Table table({"host", "mode", "IOPS", "MBPS", "watts", "IOPS/Watt"});
  for (const auto* report : {&hdd_report, &ssd_report}) {
    for (std::size_t i = 0; i < report->outcomes.size(); ++i) {
      const core::TestOutcome& outcome = report->outcomes[i];
      if (!outcome.ok()) {
        std::fprintf(stderr, "test %s failed: %s\n",
                     modes[i].to_string().c_str(), outcome.error.c_str());
        continue;
      }
      const db::TestRecord& record = outcome.record;
      table.row()
          .add(record.device)
          .add(modes[i].to_string())
          .add(record.iops, 1)
          .add(record.mbps, 2)
          .add(record.avg_watts, 1)
          .add(record.iops_per_watt, 3)
          .done();
    }
  }

  std::printf("distributed evaluation over message channels (Fig 3):\n");
  table.print(std::cout);
  std::printf("\nlocal databases: hdd=%zu records, ssd=%zu records\n",
              hdd_host.database().size(), ssd_host.database().size());
  return hdd_report.all_ok() && ssd_report.all_ok() ? 0 : 1;
}
