#include "storage/hdd_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "storage/mech_batch.h"

namespace tracer::storage {

HddModel::HddModel(sim::Simulator& sim, const HddParams& params,
                   std::uint64_t seed)
    : BlockDevice(sim),
      params_(params),
      rng_(seed),
      timeline_(params.idle_watts) {
  if (params_.cylinders == 0 || params_.capacity == 0) {
    throw std::invalid_argument("HddModel: capacity and cylinders must be > 0");
  }
  geom_ = derive_hdd_geometry(params_);
}

std::uint64_t HddModel::cylinder_of(Sector sector) const {
  return hdd_cylinder_of(params_, geom_, sector);
}

void HddModel::submit(const IoRequest& request, CompletionCallback done) {
  if (request.bytes == 0) {
    throw std::invalid_argument("HddModel: zero-byte request");
  }
  queue_.push_back(Pending{request, std::move(done), sim_.now()});
  last_activity_ = sim_.now();
  if (power_state_ == PowerState::kStandby) {
    spin_up();  // I/O arrival wakes a spun-down drive
    return;
  }
  if (power_state_ == PowerState::kActive && !busy_) start_next();
}

bool HddModel::spin_down() {
  if (power_state_ != PowerState::kActive || busy_ || !queue_.empty()) {
    return false;
  }
  power_state_ = PowerState::kStandby;
  timeline_.set_base(sim_.now(), params_.standby_watts);
  return true;
}

void HddModel::spin_up() {
  if (power_state_ != PowerState::kStandby) return;
  power_state_ = PowerState::kSpinningUp;
  ++spin_ups_;
  const std::uint64_t epoch = ++spin_up_epoch_;
  const Seconds t0 = sim_.now();
  // The base must rise to idle_watts for the whole kSpinningUp window; the
  // surge pulse is *additive*, so leaving the base at standby_watts would
  // under-count every wake-up by (idle - standby) x spin_up_time joules.
  // Pinned by PowerPolicyTest.WakeCycleEnergyExactJoules.
  timeline_.set_base(t0, params_.idle_watts);
  timeline_.add_pulse(t0, t0 + params_.spin_up_time,
                      params_.spin_up_extra_watts);
  sim_.schedule_in(params_.spin_up_time, [this, epoch] {
    if (epoch != spin_up_epoch_ ||
        power_state_ != PowerState::kSpinningUp) {
      return;
    }
    power_state_ = PowerState::kActive;
    if (!busy_) start_next();
  });
}

std::deque<HddModel::Pending>::iterator HddModel::pick_next() {
  if (params_.discipline == HddParams::Discipline::kFifo ||
      queue_.size() == 1) {
    return queue_.begin();
  }
  // LOOK: among queued requests, pick the one whose cylinder is closest to
  // the head in the current sweep direction; fall back to nearest overall.
  auto best = queue_.begin();
  std::uint64_t best_distance = ~0ULL;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const std::uint64_t cyl = cylinder_of(it->request.sector);
    const std::uint64_t distance = cyl > mech_.head_cylinder
                                       ? cyl - mech_.head_cylinder
                                       : mech_.head_cylinder - cyl;
    if (distance < best_distance) {
      best_distance = distance;
      best = it;
    }
  }
  return best;
}

void HddModel::start_next() {
  if (queue_.empty() || power_state_ != PowerState::kActive) return;
  busy_ = true;

  auto it = pick_next();
  Pending pending = std::move(*it);
  queue_.erase(it);

  const IoRequest& req = pending.request;
  const Seconds t0 = sim_.now();
  const HddServicePlan plan =
      hdd_plan_service(params_, geom_, mech_, rng_, req.sector, req.bytes);

  // Power: voice coil during the seek, head/channel during the transfer.
  const Seconds seek_begin = t0 + params_.command_overhead;
  if (plan.seek > 0.0) {
    timeline_.add_pulse(seek_begin, seek_begin + plan.seek,
                        params_.seek_extra_watts);
  }
  const Seconds transfer_begin = seek_begin + plan.seek + plan.rotation;
  Watts transfer_extra = params_.transfer_extra_watts;
  if (req.op == OpType::kWrite) transfer_extra += params_.write_extra_watts;
  timeline_.add_pulse(transfer_begin, transfer_begin + plan.transfer,
                      transfer_extra);

  if (plan.sequential) ++sequential_hits_;
  busy_time_ += plan.service;

  const Seconds finish = t0 + plan.service;
  sim_.schedule_at(
      finish, [this, pending = std::move(pending), finish]() mutable {
        ++completed_;
        busy_ = false;
        last_activity_ = sim_.now();
        IoCompletion completion{pending.request.id, pending.submit_time,
                                finish, pending.request.bytes,
                                pending.request.op};
        // Start the next request before invoking the callback so a callback
        // that submits more I/O sees a live queue, not an idle disk.
        start_next();
        pending.done(completion);
      });
}

}  // namespace tracer::storage
