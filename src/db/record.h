// Result-database record (§III-A1): "each record in the database contains
// information on energy efficiency and performance (e.g., time of the test,
// workload modes, energy dissipation data, performance result, and
// energy-efficiency result)".
#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

namespace tracer::db {

struct TestRecord {
  // Test identity
  std::uint64_t test_id = 0;
  std::string timestamp;       ///< ISO-8601 wall-clock of the test
  std::string device;          ///< storage system under test
  std::string trace_name;      ///< trace replayed

  // Workload mode vector (request size, random rate, read rate, load)
  Bytes request_size = 0;
  double random_ratio = 0.0;
  double read_ratio = 0.0;
  double load_proportion = 0.0;

  // Energy dissipation data (average current, voltage, power)
  double avg_amps = 0.0;
  double avg_volts = 0.0;
  Watts avg_watts = 0.0;
  Joules joules = 0.0;
  /// False when the power channel was down for this test: the replay
  /// completed and the performance figures are real, but power and the
  /// efficiency metrics are unmeasured (zeroed) — degraded, not failed
  /// (docs/RESILIENCE.md).
  bool power_valid = true;

  // Performance result
  double iops = 0.0;
  double mbps = 0.0;
  double avg_response_ms = 0.0;

  // Energy-efficiency result (the paper's two new metrics)
  double iops_per_watt = 0.0;
  double mbps_per_kilowatt = 0.0;

  friend bool operator==(const TestRecord&, const TestRecord&) = default;
};

}  // namespace tracer::db
