// §VI step 1 at full scale: "We evaluated 125 synthetic I/O traces, each of
// which was replayed ten times with load proportions varied from 10% to
// 100%... more than 1250 experiments". This bench runs the complete
// campaign — every mode of the 5x5x5 grid collected once and replayed at
// all ten levels — and reports the aggregates the paper draws from it:
// the power/throughput correlation, and where the efficiency extremes sit
// in the mode space. The full per-test table lands in a CSV next to the
// binary's working directory.
#include "bench_common.h"

#include "util/stats.h"

#include <algorithm>
#include <fstream>

int main() {
  using namespace tracer;
  bench::print_header(
      "Campaign — 125 synthetic modes x 10 load levels (1250 experiments)",
      "power correlates with throughput; efficiency extremes follow "
      "size/random structure");

  core::EvaluationOptions options = bench::bench_options();
  options.collection_duration = 2.0;  // keeps the campaign minutes-scale
  core::EvaluationHost host(storage::ArrayConfig::hdd_testbed(6),
                            bench::bench_repository_dir() / "campaign",
                            options);

  std::vector<workload::WorkloadMode> all_tests;
  for (const workload::WorkloadMode& base : workload::synthetic_grid()) {
    for (double load : bench::load_levels()) {
      workload::WorkloadMode mode = base;
      mode.load_proportion = load;
      all_tests.push_back(mode);
    }
  }
  std::printf("running %zu experiments...\n", all_tests.size());
  const auto results = host.run_sweep(all_tests);

  // Aggregate 1: the §I claim — "power consumption ... is closely
  // correlated with I/O throughput performance AND workload affecting
  // factors". Holding the workload factors fixed (within one mode), power
  // must track throughput across the ten load levels; across modes the
  // workload factors dominate, which is exactly the paper's point.
  std::vector<double> per_mode_corr;
  for (std::size_t m = 0; m < results.size(); m += 10) {
    std::vector<double> watts;
    std::vector<double> mbps;
    for (std::size_t l = 0; l < 10; ++l) {
      watts.push_back(results[m + l].record.avg_watts);
      mbps.push_back(results[m + l].record.mbps);
    }
    per_mode_corr.push_back(util::pearson_correlation(mbps, watts));
  }
  std::sort(per_mode_corr.begin(), per_mode_corr.end());
  const double median_corr = per_mode_corr[per_mode_corr.size() / 2];
  std::printf(
      "within-mode power-vs-MBPS correlation across load levels: median "
      "%.3f, min %.3f (125 modes)\n",
      median_corr, per_mode_corr.front());
  bench::print_verdict(median_corr > 0.9,
                       "power consumption closely correlated with I/O "
                       "throughput once workload factors are held fixed "
                       "(§I)");

  // Aggregate 2: efficiency extremes at full load.
  const core::TestResult* best_iops_w = nullptr;
  const core::TestResult* worst_iops_w = nullptr;
  const core::TestResult* best_mbps_kw = nullptr;
  for (const auto& result : results) {
    if (result.record.load_proportion < 1.0) continue;
    if (!best_iops_w ||
        result.record.iops_per_watt > best_iops_w->record.iops_per_watt) {
      best_iops_w = &result;
    }
    if (!worst_iops_w ||
        result.record.iops_per_watt < worst_iops_w->record.iops_per_watt) {
      worst_iops_w = &result;
    }
    if (!best_mbps_kw || result.record.mbps_per_kilowatt >
                             best_mbps_kw->record.mbps_per_kilowatt) {
      best_mbps_kw = &result;
    }
  }
  auto mode_of = [](const core::TestResult& r) {
    return util::format("%s rnd%.0f%% rd%.0f%%",
                        util::format_size(r.record.request_size).c_str(),
                        r.record.random_ratio * 100,
                        r.record.read_ratio * 100);
  };
  util::Table extremes({"extreme (load 100%)", "mode", "value"});
  extremes.row()
      .add("best IOPS/Watt")
      .add(mode_of(*best_iops_w))
      .add(best_iops_w->record.iops_per_watt, 2)
      .done();
  extremes.row()
      .add("worst IOPS/Watt")
      .add(mode_of(*worst_iops_w))
      .add(worst_iops_w->record.iops_per_watt, 2)
      .done();
  extremes.row()
      .add("best MBPS/kW")
      .add(mode_of(*best_mbps_kw))
      .add(best_mbps_kw->record.mbps_per_kilowatt, 2)
      .done();
  extremes.print(std::cout);

  // Paper structure checks on the extremes: small+sequential wins
  // IOPS/Watt; large+sequential wins MBPS/kW; large+random loses IOPS/Watt.
  bench::print_verdict(best_iops_w->record.request_size <= 4 * kKiB &&
                           best_iops_w->record.random_ratio == 0.0,
                       "best IOPS/Watt is a small sequential mode");
  bench::print_verdict(best_mbps_kw->record.request_size >= 64 * kKiB &&
                           best_mbps_kw->record.random_ratio == 0.0,
                       "best MBPS/kW is a large sequential mode");
  bench::print_verdict(worst_iops_w->record.request_size == kMiB,
                       "worst IOPS/Watt is a 1 MB mode (fewest ops per "
                       "joule)");

  // Aggregate 3: mean load-control accuracy across all 125 modes.
  double worst_accuracy_error = 0.0;
  for (std::size_t m = 0; m < results.size(); m += 10) {
    const double base_iops = results[m + 9].record.iops;  // load 100 %
    if (base_iops <= 0.0) continue;
    for (std::size_t l = 0; l < 10; ++l) {
      const double configured = bench::load_levels()[l];
      const double accuracy = core::load_control_accuracy(
          core::load_proportion(base_iops, results[m + l].record.iops),
          configured);
      worst_accuracy_error =
          std::max(worst_accuracy_error, std::abs(accuracy - 1.0));
    }
  }
  std::printf("worst IOPS load-control error across all 1250 tests: "
              "%.1f %%\n",
              worst_accuracy_error * 100.0);
  bench::print_verdict(worst_accuracy_error < 0.40,
                       "load control usable across the whole grid even at "
                       "2 s trace scale (error shrinks ~1/sqrt(packages); "
                       "see fig08 for paper-scale accuracy)");

  host.database().export_csv("campaign_1250.csv");
  std::printf("full per-test records: campaign_1250.csv (%zu rows)\n",
              host.database().size());
  return 0;
}
