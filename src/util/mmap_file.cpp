#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace tracer::util {

namespace {
std::size_t page_size() {
  static const std::size_t size =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}
}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("MappedFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("MappedFile: cannot stat " + path + ": " +
                             std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: valid zero-length mapping
  }
  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapped == MAP_FAILED) {
    size_ = 0;
    throw std::runtime_error("MappedFile: mmap failed for " + path + ": " +
                             std::strerror(err));
  }
  data_ = static_cast<const unsigned char*>(mapped);
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::advise_sequential(std::size_t offset,
                                   std::size_t length) const {
  if (data_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  const std::size_t page = page_size();
  const std::size_t begin = offset / page * page;
  ::madvise(const_cast<unsigned char*>(data_) + begin,
            length + (offset - begin), MADV_SEQUENTIAL);
}

void MappedFile::advise_dont_need(std::size_t offset,
                                  std::size_t length) const {
  if (data_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  const std::size_t page = page_size();
  // Shrink to whole pages strictly inside the range: partially covered
  // boundary pages may still hold live neighbouring data.
  const std::size_t begin = (offset + page - 1) / page * page;
  const std::size_t end = (offset + length) / page * page;
  if (end <= begin) return;
  ::madvise(const_cast<unsigned char*>(data_) + begin, end - begin,
            MADV_DONTNEED);
}

}  // namespace tracer::util
