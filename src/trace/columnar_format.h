// Columnar on-disk trace format v2 (".replay2") — the streaming,
// bounded-memory sibling of the v1 ".replay" row format.
//
// Where v1 interleaves bunches row by row (so reading bunch N means
// decoding everything before it), v2 stores the trace as structure-of-
// arrays segments, each contiguous and mmap-able, with a per-bunch index:
//
//   offset 0: magic "TRC2" | u16 version (=2) | u16 reserved (=0)
//   8:        timestamps   bunch_count × f64      bunch arrival seconds
//             pkg_offsets  (bunch_count+1) × u64  prefix sums: packages of
//                                                 bunch i live at
//                                                 [off[i], off[i+1])
//             sectors      package_count × u64
//             bytes        package_count × u32
//             ops          package_count × u8     0 = read, 1 = write
//   footer:   str device | u64 bunch_count | u64 package_count
//             | u64 × 5 segment offsets (timestamps, pkg_offsets, sectors,
//               bytes, ops)
//   trailer:  u64 footer_offset | magic "2CRT"    (fixed 12 bytes at EOF)
//
// Everything is little-endian (util/binary_io conventions). The footer
// lives at the end so the writer can stream segments without knowing the
// counts up front; the fixed trailer makes it findable. Timestamps are
// stored as raw f64 bit patterns, so a v1 -> v2 -> replay round trip is
// bit-identical to replaying the v1 trace directly.
//
// The pkg_offsets segment is the per-bunch index: any bunch's packages are
// O(1) addressable, which is what gives ProportionalFilter its
// O(selection) cost on on-disk traces. ColumnarTraceReader validates the
// whole skeleton at open (magic, version, counts vs file size, segment
// layout, offset monotonicity) before exposing any data; per-bunch payload
// (timestamps, op codes) is validated at decode time, exactly like v1.
//
// Versioning policy: the u16 after the magic is the format version; readers
// reject anything but the version they implement (no silent forward
// compatibility — docs/TRACE_FORMAT.md).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "trace/trace_source.h"
#include "util/mmap_file.h"

namespace tracer::trace {

inline constexpr char kColumnarMagic[4] = {'T', 'R', 'C', '2'};
inline constexpr char kColumnarTrailerMagic[4] = {'2', 'C', 'R', 'T'};
inline constexpr std::uint16_t kColumnarVersion = 2;

/// Extension used by the trace repository for v2 entries.
inline constexpr const char* kColumnarExtension = ".replay2";

/// Streaming v2 encoder with bounded memory: each segment spills to its
/// own temporary file as bunches arrive, and finish() stitches them into
/// the final layout. Converting a multi-GB v1 trace never materializes it.
class ColumnarWriter {
 public:
  /// Starts a write to `path` (created/truncated by finish()). Temporary
  /// segment files live next to the destination.
  ColumnarWriter(std::string path, std::string device);
  ~ColumnarWriter();

  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  /// Append one bunch. Throws std::runtime_error on I/O failure and
  /// std::invalid_argument on non-encodable data (non-finite or negative
  /// timestamp, too many packages, too many bunches).
  void add(const Bunch& bunch);
  void add(Seconds timestamp, const std::vector<IoPackage>& packages);

  std::uint64_t bunch_count() const { return bunch_count_; }
  std::uint64_t package_count() const { return package_count_; }

  /// Assemble the final file. Must be called exactly once; throws on any
  /// I/O failure (the destination is removed on failure).
  void finish();

 private:
  void append_segment(std::ofstream& out, std::size_t index);
  void cleanup() noexcept;

  std::string path_;
  std::string device_;
  std::string temp_paths_[5];
  std::ofstream segments_[5];  ///< timestamps, offsets, sectors, bytes, ops
  std::uint64_t bunch_count_ = 0;
  std::uint64_t package_count_ = 0;
  bool finished_ = false;
};

/// Whole-trace convenience encoder (tests, small traces, repository
/// store). Streams through ColumnarWriter.
void write_columnar_file(const std::string& path, const Trace& trace);

/// Memory-mapped v2 decoder. Opening validates the file skeleton; the
/// segments stay on disk and windows decode on demand, so the resident
/// cost of a reader is O(window), not O(trace). Immutable after open —
/// safe to share across threads (give each replay its own ColumnarSource).
class ColumnarTraceReader {
 public:
  /// Opens and validates; throws std::runtime_error on any malformed,
  /// truncated, or implausible file.
  explicit ColumnarTraceReader(const std::string& path);

  const std::string& device() const { return device_; }
  std::uint64_t bunch_count() const { return bunch_count_; }
  std::uint64_t package_count() const { return package_count_; }

  /// Arrival time of bunch i, validated (finite, >= 0) at decode time.
  Seconds timestamp(std::uint64_t i) const;

  std::uint32_t packages_in_bunch(std::uint64_t i) const;

  /// Decode bunches [first, first+count) into `out` (replaced). Validates
  /// op codes and timestamps; throws std::runtime_error on corrupt data.
  void read_window(std::uint64_t first, std::uint64_t count,
                   std::vector<Bunch>& out) const;

  /// Whole-selection aggregates via sequential segment scans.
  Bytes total_bytes() const;
  double read_ratio() const;

  /// Advise the kernel that the pages backing bunches [first, first+count)
  /// have been consumed (streaming replay keeps RSS bounded this way).
  void advise_consumed(std::uint64_t first, std::uint64_t count) const;

 private:
  std::uint64_t pkg_offset(std::uint64_t i) const;

  util::MappedFile map_;
  std::string device_;
  std::uint64_t bunch_count_ = 0;
  std::uint64_t package_count_ = 0;
  std::uint64_t timestamps_off_ = 0;
  std::uint64_t offsets_off_ = 0;
  std::uint64_t sectors_off_ = 0;
  std::uint64_t bytes_off_ = 0;
  std::uint64_t ops_off_ = 0;
};

/// Bounded-memory TraceSource over a shared reader: a sliding window of
/// decoded bunches (default 4096) follows the replay cursor; consumed
/// windows are madvise'd out of the resident set when `evict_consumed`.
/// Confined to one thread (the window cache mutates under const).
class ColumnarSource final : public TraceSource {
 public:
  struct Options {
    std::size_t window_bunches = 4096;
    bool evict_consumed = true;
  };

  explicit ColumnarSource(std::shared_ptr<const ColumnarTraceReader> reader);
  ColumnarSource(std::shared_ptr<const ColumnarTraceReader> reader,
                 Options options);

  const std::string& device() const override { return reader_->device(); }
  std::size_t bunch_count() const override {
    return static_cast<std::size_t>(reader_->bunch_count());
  }
  Seconds raw_timestamp(std::size_t i) const override {
    return reader_->timestamp(i);
  }
  const std::vector<IoPackage>& packages(std::size_t i) const override;
  std::uint64_t package_count() const override {
    return reader_->package_count();
  }
  Bytes total_bytes() const override { return reader_->total_bytes(); }
  double read_ratio() const override { return reader_->read_ratio(); }

  const std::shared_ptr<const ColumnarTraceReader>& reader() const {
    return reader_;
  }

 private:
  void load_window(std::size_t first) const;

  std::shared_ptr<const ColumnarTraceReader> reader_;
  Options options_;
  mutable std::vector<Bunch> window_;
  mutable std::uint64_t window_begin_ = 0;
  mutable std::uint64_t window_end_ = 0;  ///< [begin, end); empty when ==
};

/// Open a v2 file as a streaming source (shared reader + fresh window).
std::shared_ptr<const TraceSource> open_columnar_source(
    const std::string& path, ColumnarSource::Options options = {});

/// v1 -> v2 conversion with bounded memory (streams bunch by bunch).
/// Returns the number of bunches converted.
std::uint64_t convert_blk_to_columnar(const std::string& v1_path,
                                      const std::string& v2_path);

/// v2 -> v1 conversion with bounded memory (windowed decode, streamed
/// re-encode). Returns the number of bunches converted.
std::uint64_t convert_columnar_to_blk(const std::string& v2_path,
                                      const std::string& v1_path);

}  // namespace tracer::trace
