#include "sim/simulator.h"

#include <algorithm>

namespace tracer::sim {

void Simulator::schedule_at(Seconds at, Action action) {
  if (at < now_) ++late_schedules_;
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(action));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(action);
  }
  heap_.push_back(Event{std::max(at, now_), next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::schedule_in(Seconds delay, Action action) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(action));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event event = heap_.back();
  heap_.pop_back();
  // Move the callable out and recycle its slot *before* invoking: the
  // action may schedule new events (and thus reuse the slot).
  Action action = std::move(slots_[event.slot]);
  slots_[event.slot].reset();
  free_slots_.push_back(event.slot);
  now_ = event.time;
  ++dispatched_;
  action();
  return true;
}

Seconds Simulator::run() {
  while (step()) {
  }
  return now_;
}

Seconds Simulator::run_until(Seconds t_end) {
  while (!heap_.empty() && heap_.front().time <= t_end) {
    step();
  }
  now_ = std::max(now_, t_end);
  return now_;
}

void Simulator::clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
}

}  // namespace tracer::sim
