#include "UncheckedNarrowingInCodecCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::tracer {

void UncheckedNarrowingInCodecCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "PathFilter", PathFilter);
  Options.store(Opts, "FunctionFilter", FunctionFilter);
}

void UncheckedNarrowingInCodecCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      implicitCastExpr(hasCastKind(CK_IntegralCast),
                       forFunction(functionDecl().bind("fn")))
          .bind("cast"),
      this);
}

void UncheckedNarrowingInCodecCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ImplicitCastExpr>("cast");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (!Cast || !Fn || !Result.Context)
    return;
  const SourceLocation Loc = Cast->getBeginLoc();
  if (Loc.isInvalid() || Result.SourceManager->isInSystemHeader(Loc))
    return;
  if (!pathMatches(PathFilter, locationFile(*Result.SourceManager, Loc)))
    return;
  if (!llvm::Regex(FunctionFilter).match(Fn->getNameAsString()))
    return;

  ASTContext &Ctx = *Result.Context;
  const Expr *Src = Cast->getSubExpr();
  const QualType From = Src->getType();
  const QualType To = Cast->getType();
  if (From->isBooleanType() || To->isBooleanType() || From->isEnumeralType() ||
      To->isEnumeralType())
    return;
  const uint64_t FromWidth = Ctx.getIntWidth(From);
  const uint64_t ToWidth = Ctx.getIntWidth(To);
  if (ToWidth >= FromWidth)
    return;

  // A constant that provably fits the destination is not a truncation:
  // `std::uint8_t version = 2;` stays legal.
  if (!Src->isValueDependent()) {
    Expr::EvalResult Eval;
    if (Src->EvaluateAsInt(Eval, Ctx)) {
      const llvm::APSInt V = Eval.Val.getInt();
      const bool Fits = To->isSignedIntegerType()
                            ? V.isSignedIntN(ToWidth)
                            : (!V.isNegative() && V.isIntN(ToWidth));
      if (Fits)
        return;
    }
  }

  diag(Loc, "implicit %0 -> %1 narrowing in codec function '%2' can "
            "silently truncate a wire field; make the width change an "
            "explicit static_cast next to a range check")
      << From.getUnqualifiedType().getAsString()
      << To.getUnqualifiedType().getAsString() << Fn->getNameAsString();
}

} // namespace clang::tidy::tracer
