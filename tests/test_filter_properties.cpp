// Parameterized property sweeps for the proportional filter (§IV): the
// invariants of the paper's selection algorithm must hold for every
// (group size, selection count) pair and every trace shape.
#include <gtest/gtest.h>

#include <set>

#include "core/proportional_filter.h"
#include "util/rng.h"

namespace tracer::core {
namespace {

// ---------- pattern invariants over (group_size, k) ----------

using PatternParam = std::tuple<std::size_t, std::size_t>;  // (g, k)

class FilterPatternProperty : public ::testing::TestWithParam<PatternParam> {
};

TEST_P(FilterPatternProperty, SelectsExactlyKPositions) {
  const auto [g, k] = GetParam();
  const auto pattern = ProportionalFilter::selection_pattern(g, k);
  std::size_t selected = 0;
  for (bool bit : pattern) selected += bit ? 1 : 0;
  EXPECT_EQ(selected, k);
}

TEST_P(FilterPatternProperty, GapsAreBalanced) {
  // Uniform spacing: the distance between consecutive selections differs
  // by at most one slot, and the largest gap is at most ceil(g/k)+1.
  const auto [g, k] = GetParam();
  const auto pattern = ProportionalFilter::selection_pattern(g, k);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < g; ++i) {
    if (pattern[i]) positions.push_back(i);
  }
  if (positions.size() < 2) return;
  std::size_t lo = g;
  std::size_t hi = 0;
  for (std::size_t i = 1; i < positions.size(); ++i) {
    const std::size_t gap = positions[i] - positions[i - 1];
    lo = std::min(lo, gap);
    hi = std::max(hi, gap);
  }
  EXPECT_LE(hi - lo, 1u) << "g=" << g << " k=" << k;
}

TEST_P(FilterPatternProperty, NestedProportionsAreMonotone) {
  // Increasing k never deselects a previously... (not true for Bresenham
  // in general) — but the COUNT is monotone and the last position stays
  // selected for every k (the paper's anchor: the 10th bunch is always
  // replayed).
  const auto [g, k] = GetParam();
  const auto pattern = ProportionalFilter::selection_pattern(g, k);
  EXPECT_TRUE(pattern[g - 1]) << "g=" << g << " k=" << k;
}

std::vector<PatternParam> pattern_params() {
  std::set<PatternParam> params;
  for (std::size_t g : {2, 3, 5, 8, 10, 16, 100}) {
    for (std::size_t k = 1; k <= g; k = k < 4 ? k + 1 : k * 2) {
      params.emplace(g, k);
    }
    params.emplace(g, g);
  }
  return {params.begin(), params.end()};
}

INSTANTIATE_TEST_SUITE_P(
    GroupAndCount, FilterPatternProperty,
    ::testing::ValuesIn(pattern_params()),
    [](const ::testing::TestParamInfo<PatternParam>& param_info) {
      return "g" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------- trace-level invariants over load proportion ----------

class FilterTraceProperty : public ::testing::TestWithParam<int> {
 protected:
  static trace::Trace bursty_trace() {
    util::Rng rng(99);
    trace::Trace trace;
    trace.device = "prop";
    Seconds t = 0.0;
    for (int b = 0; b < 5000; ++b) {
      t += rng.exponential(0.01);
      trace::Bunch bunch;
      bunch.timestamp = t;
      const std::size_t packages = 1 + rng.below(6);
      for (std::size_t p = 0; p < packages; ++p) {
        bunch.packages.push_back(trace::IoPackage{
            rng.below(1ULL << 30), (1 + rng.below(64)) * 512,
            rng.chance(0.6) ? OpType::kRead : OpType::kWrite});
      }
      trace.bunches.push_back(std::move(bunch));
    }
    return trace;
  }
};

TEST_P(FilterTraceProperty, BunchCountMatchesConfiguredProportion) {
  const double proportion = GetParam() / 100.0;
  const trace::Trace trace = bursty_trace();
  const trace::Trace filtered = ProportionalFilter::apply(trace, proportion);
  EXPECT_EQ(filtered.bunch_count(),
            trace.bunch_count() / 10 *
                ProportionalFilter::select_count_for(proportion, 10));
}

TEST_P(FilterTraceProperty, FilteredIsSubsequenceOfOriginal) {
  const double proportion = GetParam() / 100.0;
  const trace::Trace trace = bursty_trace();
  const trace::Trace filtered = ProportionalFilter::apply(trace, proportion);
  std::size_t cursor = 0;
  for (const auto& bunch : filtered.bunches) {
    while (cursor < trace.bunches.size() &&
           !(trace.bunches[cursor] == bunch)) {
      ++cursor;
    }
    ASSERT_LT(cursor, trace.bunches.size())
        << "filtered bunch not found in order in the original";
    ++cursor;
  }
}

TEST_P(FilterTraceProperty, PackageShareTracksProportionStatistically) {
  const double proportion = GetParam() / 100.0;
  const trace::Trace trace = bursty_trace();
  const trace::Trace filtered = ProportionalFilter::apply(trace, proportion);
  const double share = static_cast<double>(filtered.package_count()) /
                       static_cast<double>(trace.package_count());
  // 5000 bunches: sampling error well under 4 %.
  EXPECT_NEAR(share, proportion, 0.04 * proportion + 0.002);
}

TEST_P(FilterTraceProperty, ReadRatioIsPreserved) {
  const double proportion = GetParam() / 100.0;
  const trace::Trace trace = bursty_trace();
  const trace::Trace filtered = ProportionalFilter::apply(trace, proportion);
  EXPECT_NEAR(filtered.read_ratio(), trace.read_ratio(), 0.03);
}

TEST_P(FilterTraceProperty, DurationIsNearlyPreserved) {
  // Selected bunches keep original timestamps, so the filtered trace spans
  // (almost) the same window — the property that makes eq. 1 meaningful.
  const double proportion = GetParam() / 100.0;
  const trace::Trace trace = bursty_trace();
  const trace::Trace filtered = ProportionalFilter::apply(trace, proportion);
  EXPECT_GT(filtered.duration(), trace.duration() * 0.99);
}

INSTANTIATE_TEST_SUITE_P(LoadLevels, FilterTraceProperty,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80,
                                           90, 100));

}  // namespace
}  // namespace tracer::core
