// Flat key=value configuration with '#' comments and [section] prefixes.
// Used by the evaluation host to load testbed descriptions (the paper's
// Table II) and by examples to override model parameters without rebuilds.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace tracer::util {

class Config {
 public:
  Config() = default;

  /// Parse from text. Keys inside "[section]" blocks become "section.key".
  /// Throws std::runtime_error with a line number on malformed input.
  static Config parse(std::string_view text);

  /// Load a file; throws std::runtime_error when unreadable.
  static Config load(const std::string& path);

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters returning `fallback` when the key is absent; throwing
  /// std::runtime_error when present but malformed (silent coercion of a
  /// typo'd power figure would invalidate an experiment).
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Accepts suffixed sizes: "128K", "1M".
  std::uint64_t get_size(const std::string& key,
                         std::uint64_t fallback) const;

  std::size_t size() const { return values_.size(); }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tracer::util
