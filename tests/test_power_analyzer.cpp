#include "power/power_analyzer.h"

#include <gtest/gtest.h>

#include "power/power_timeline.h"

namespace tracer::power {
namespace {

/// A power source backed by a timeline the test controls.
class FakeSource final : public PowerSource {
 public:
  explicit FakeSource(std::string label, Watts base = 0.0)
      : label_(std::move(label)), timeline_(base) {}

  PowerTimeline& timeline() { return timeline_; }

  std::string name() const override { return label_; }
  Watts power_at(Seconds t) const override { return timeline_.power_at(t); }
  Joules energy_until(Seconds t) override { return timeline_.energy_until(t); }

 private:
  std::string label_;
  PowerTimeline timeline_;
};

HallSensorParams perfect_sensor() {
  HallSensorParams params;
  params.noise_relative = 0.0;
  params.gain_sigma = 0.0;
  params.offset_watts = 0.0;
  params.quantum_watts = 0.0;
  params.voltage_ripple = 0.0;
  return params;
}

TEST(PowerAnalyzer, RejectsBadCycle) {
  EXPECT_THROW(PowerAnalyzer(0.0), std::invalid_argument);
}

TEST(PowerAnalyzer, MeasuresConstantSourceExactly) {
  FakeSource source("const", 42.0);
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  analyzer.start(0.0);
  for (int t = 1; t <= 10; ++t) analyzer.sample_at(t);
  const ChannelReport& report = analyzer.report(0);
  EXPECT_EQ(report.samples.size(), 10u);
  EXPECT_DOUBLE_EQ(report.mean_watts(), 42.0);
  EXPECT_DOUBLE_EQ(report.true_joules, 420.0);
  EXPECT_DOUBLE_EQ(report.measured_joules(1.0), 420.0);
  EXPECT_EQ(report.name, "const");
}

TEST(PowerAnalyzer, CapturesPulseEnergyInCycleAverages) {
  FakeSource source("pulsy", 10.0);
  source.timeline().add_pulse(0.25, 0.75, 20.0);  // inside first cycle
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  analyzer.start(0.0);
  analyzer.sample_at(1.0);
  analyzer.sample_at(2.0);
  const auto& samples = analyzer.report(0).samples;
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].true_watts, 20.0);  // 10 + 20*0.5
  EXPECT_DOUBLE_EQ(samples[1].true_watts, 10.0);
}

TEST(PowerAnalyzer, MultiChannelIndependence) {
  FakeSource a("a", 10.0);
  FakeSource b("b", 30.0);
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  EXPECT_EQ(analyzer.add_channel(a), 0u);
  EXPECT_EQ(analyzer.add_channel(b), 1u);
  analyzer.start(0.0);
  analyzer.sample_at(1.0);
  EXPECT_DOUBLE_EQ(analyzer.report(0).mean_watts(), 10.0);
  EXPECT_DOUBLE_EQ(analyzer.report(1).mean_watts(), 30.0);
}

TEST(PowerAnalyzer, StartAfterEnergyHistoryExcludesIt) {
  FakeSource source("hist", 100.0);
  source.timeline().energy_until(50.0);  // consume some history
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  analyzer.start(50.0);
  analyzer.sample_at(51.0);
  EXPECT_DOUBLE_EQ(analyzer.report(0).true_joules, 100.0);
}

TEST(PowerAnalyzer, DuplicateBoundaryIgnored) {
  FakeSource source("dup", 5.0);
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  analyzer.start(0.0);
  analyzer.sample_at(1.0);
  analyzer.sample_at(1.0);  // same instant: nothing to integrate
  EXPECT_EQ(analyzer.report(0).samples.size(), 1u);
}

TEST(PowerAnalyzer, SampleBeforeStartThrows) {
  FakeSource source("x", 1.0);
  PowerAnalyzer analyzer(1.0);
  analyzer.add_channel(source);
  EXPECT_THROW(analyzer.sample_at(1.0), std::logic_error);
}

TEST(PowerAnalyzer, AddChannelMidRunThrows) {
  FakeSource a("a", 1.0);
  FakeSource b("b", 1.0);
  PowerAnalyzer analyzer(1.0);
  analyzer.add_channel(a);
  analyzer.start(0.0);
  EXPECT_THROW(analyzer.add_channel(b), std::logic_error);
}

TEST(PowerAnalyzer, ScheduleSamplingOnSimulator) {
  FakeSource source("sim", 7.0);
  PowerAnalyzer analyzer(0.5, perfect_sensor());
  analyzer.add_channel(source);
  sim::Simulator sim;
  analyzer.schedule_sampling(sim, 0.0, 4.0);
  sim.run();
  EXPECT_EQ(analyzer.report(0).samples.size(), 8u);
  EXPECT_DOUBLE_EQ(analyzer.report(0).mean_watts(), 7.0);
}

TEST(PowerAnalyzer, ScheduleSamplingKeepsSampleAtExactWindowEnd) {
  // 0.7 / 0.1 == 6.999... in binary floating point; a bare floor would
  // schedule only 6 samples and drop the one at t_end, shorting the
  // measured window by a full cycle.
  FakeSource source("fp-edge", 11.0);
  PowerAnalyzer analyzer(0.1, perfect_sensor());
  analyzer.add_channel(source);
  sim::Simulator sim;
  analyzer.schedule_sampling(sim, 0.0, 0.7);
  sim.run();
  EXPECT_EQ(analyzer.report(0).samples.size(), 7u);
}

TEST(PowerAnalyzer, ResetClearsSamplesKeepsChannels) {
  FakeSource source("r", 3.0);
  PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  analyzer.start(0.0);
  analyzer.sample_at(1.0);
  analyzer.reset();
  EXPECT_EQ(analyzer.channel_count(), 1u);
  EXPECT_TRUE(analyzer.report(0).samples.empty());
  analyzer.start(2.0);
  analyzer.sample_at(3.0);
  EXPECT_EQ(analyzer.report(0).samples.size(), 1u);
}

}  // namespace
}  // namespace tracer::power
