#include "util/config.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tracer::util {
namespace {

TEST(Config, ParsesKeyValues) {
  const Config cfg = Config::parse("a = 1\nb=hello\n");
  EXPECT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
}

TEST(Config, SkipsCommentsAndBlanks) {
  const Config cfg = Config::parse("# comment\n\n; also comment\nx=1\n");
  EXPECT_EQ(cfg.size(), 1u);
}

TEST(Config, SectionsPrefixKeys) {
  const Config cfg = Config::parse("[array]\ndisks = 6\n[power]\nvolts=220\n");
  EXPECT_EQ(cfg.get_int("array.disks", 0), 6);
  EXPECT_EQ(cfg.get_int("power.volts", 0), 220);
  EXPECT_FALSE(cfg.contains("disks"));
}

TEST(Config, MalformedLinesThrowWithLineNumber) {
  try {
    Config::parse("good=1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(Config::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("=value\n"), std::runtime_error);
}

TEST(Config, TypedGettersFallBack) {
  const Config cfg = Config::parse("x=1\n");
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_size("missing", 128), 128u);
  EXPECT_EQ(cfg.get_string("missing", "d"), "d");
}

TEST(Config, TypedGettersThrowOnMalformedPresent) {
  const Config cfg = Config::parse("n=abc\nb=maybe\ns=12Q\n");
  EXPECT_THROW(cfg.get_int("n", 0), std::runtime_error);
  EXPECT_THROW(cfg.get_double("n", 0.0), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("b", false), std::runtime_error);
  EXPECT_THROW(cfg.get_size("s", 0), std::runtime_error);
}

TEST(Config, BoolSpellings) {
  const Config cfg =
      Config::parse("a=true\nb=YES\nc=0\nd=off\ne=On\nf=FALSE\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", false));
  EXPECT_FALSE(cfg.get_bool("f", true));
}

TEST(Config, SizesWithSuffix) {
  const Config cfg = Config::parse("stripe=128K\ncap=2G\n");
  EXPECT_EQ(cfg.get_size("stripe", 0), 128u * 1024);
  EXPECT_EQ(cfg.get_size("cap", 0), 2ull * 1024 * 1024 * 1024);
}

TEST(Config, SetOverrides) {
  Config cfg = Config::parse("x=1\n");
  cfg.set("x", "2");
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(Config, LoadFromFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "tracer_config_test.ini";
  {
    std::ofstream out(path);
    out << "[hdd]\nidle_watts = 8.0\n";
  }
  const Config cfg = Config::load(path.string());
  EXPECT_DOUBLE_EQ(cfg.get_double("hdd.idle_watts", 0.0), 8.0);
  std::filesystem::remove(path);
  EXPECT_THROW(Config::load(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace tracer::util
