#include "storage/raid_controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "power/power_timeline.h"

namespace tracer::storage {
namespace {

/// Instant-completion fake disk that records the child ops it receives.
class RecordingDisk final : public BlockDevice {
 public:
  RecordingDisk(sim::Simulator& sim, Bytes capacity, Seconds latency = 1e-4)
      : BlockDevice(sim), capacity_(capacity), latency_(latency) {}

  Bytes capacity() const override { return capacity_; }
  std::size_t outstanding() const override { return outstanding_; }
  std::string name() const override { return "recording"; }
  Watts power_at(Seconds) const override { return 1.0; }
  Joules energy_until(Seconds t) override { return t; }

  void submit(const IoRequest& request, CompletionCallback done) override {
    ops.push_back(request);
    ++outstanding_;
    sim_.schedule_in(latency_, [this, request, done = std::move(done)] {
      --outstanding_;
      done(IoCompletion{request.id, sim_.now() - latency_, sim_.now(),
                        request.bytes, request.op});
    });
  }

  std::vector<IoRequest> ops;

 private:
  Bytes capacity_;
  Seconds latency_;
  std::size_t outstanding_ = 0;
};

struct Fixture {
  static constexpr Bytes kDiskCapacity = 64ULL * 1024 * 1024;
  sim::Simulator sim;
  std::vector<std::unique_ptr<RecordingDisk>> disks;
  std::vector<IoCompletion> completions;

  std::unique_ptr<RaidController> make(std::size_t disk_count,
                                       RaidLevel level = RaidLevel::kRaid5,
                                       bool merge = true) {
    std::vector<BlockDevice*> raw;
    for (std::size_t i = 0; i < disk_count; ++i) {
      disks.push_back(std::make_unique<RecordingDisk>(sim, kDiskCapacity));
      raw.push_back(disks.back().get());
    }
    RaidGeometry geometry(level, disk_count, 128 * kKiB, kDiskCapacity);
    return std::make_unique<RaidController>(sim, geometry, std::move(raw),
                                            0.05e-3, merge);
  }

  CompletionCallback collect() {
    return [this](const IoCompletion& c) { completions.push_back(c); };
  }

  std::size_t total_child_ops() const {
    std::size_t n = 0;
    for (const auto& disk : disks) n += disk->ops.size();
    return n;
  }
};

TEST(RaidController, RejectsMismatchedDiskList) {
  sim::Simulator sim;
  RaidGeometry geometry(RaidLevel::kRaid5, 4, 128 * kKiB, kMiB);
  EXPECT_THROW(RaidController(sim, geometry, {}), std::invalid_argument);
}

TEST(RaidController, RejectsOutOfRangeRequests) {
  Fixture f;
  auto raid = f.make(4);
  const Sector beyond = raid->capacity() / kSectorSize;
  EXPECT_THROW(
      raid->submit(IoRequest{1, beyond, 4096, OpType::kRead}, f.collect()),
      std::out_of_range);
  EXPECT_THROW(raid->submit(IoRequest{1, 0, 0, OpType::kRead}, f.collect()),
               std::invalid_argument);
}

TEST(RaidController, SingleUnitReadTouchesOneDisk) {
  Fixture f;
  auto raid = f.make(6);
  raid->submit(IoRequest{1, 0, 4096, OpType::kRead}, f.collect());
  f.sim.run();
  EXPECT_EQ(f.total_child_ops(), 1u);
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(raid->stats().logical_reads, 1u);
  EXPECT_EQ(raid->stats().child_reads, 1u);
}

TEST(RaidController, SpanningReadFansOut) {
  Fixture f;
  auto raid = f.make(6);
  // 256 KB starting at 64 KB into unit 0 -> 3 extents on 3 disks.
  raid->submit(IoRequest{1, (64 * kKiB) / kSectorSize, 256 * kKiB,
                         OpType::kRead},
               f.collect());
  f.sim.run();
  EXPECT_EQ(f.total_child_ops(), 3u);
  EXPECT_EQ(f.completions.size(), 1u);
}

TEST(RaidController, SmallWritePaysReadModifyWrite) {
  Fixture f;
  auto raid = f.make(6);
  raid->submit(IoRequest{1, 0, 4096, OpType::kWrite}, f.collect());
  f.sim.run();
  // RMW: read old data + old parity, write new data + new parity.
  EXPECT_EQ(f.total_child_ops(), 4u);
  EXPECT_EQ(raid->stats().rmw_rows, 1u);
  EXPECT_EQ(raid->stats().full_stripe_writes, 0u);
  EXPECT_EQ(raid->stats().child_reads, 2u);
  EXPECT_EQ(raid->stats().child_writes, 2u);
}

TEST(RaidController, RmwWritesGoOutAfterReads) {
  Fixture f;
  auto raid = f.make(6);
  raid->submit(IoRequest{1, 0, 4096, OpType::kWrite}, f.collect());
  f.sim.run();
  // Recorded per disk in submission order: each disk saw read before write.
  for (const auto& disk : f.disks) {
    if (disk->ops.size() == 2) {
      EXPECT_EQ(disk->ops[0].op, OpType::kRead);
      EXPECT_EQ(disk->ops[1].op, OpType::kWrite);
    }
  }
}

TEST(RaidController, FullStripeWriteSkipsReads) {
  Fixture f;
  auto raid = f.make(6);
  const Bytes full_row = 5 * 128 * kKiB;
  raid->submit(IoRequest{1, 0, full_row, OpType::kWrite}, f.collect());
  f.sim.run();
  // 5 data writes + 1 parity write; zero reads.
  EXPECT_EQ(f.total_child_ops(), 6u);
  EXPECT_EQ(raid->stats().full_stripe_writes, 1u);
  EXPECT_EQ(raid->stats().child_reads, 0u);
  EXPECT_EQ(raid->stats().child_writes, 6u);
}

TEST(RaidController, Raid0WriteHasNoParityCost) {
  Fixture f;
  auto raid = f.make(4, RaidLevel::kRaid0);
  raid->submit(IoRequest{1, 0, 4096, OpType::kWrite}, f.collect());
  f.sim.run();
  EXPECT_EQ(f.total_child_ops(), 1u);
}

TEST(RaidController, MergesContiguousRequestsInBatch) {
  Fixture f;
  auto raid = f.make(6, RaidLevel::kRaid5, /*merge=*/true);
  // Eight contiguous 16 KB reads submitted back-to-back (same batch
  // window) covering one 128 KB unit -> one child read.
  for (int i = 0; i < 8; ++i) {
    raid->submit(IoRequest{static_cast<std::uint64_t>(i),
                           static_cast<Sector>(i) * 32, 16 * kKiB,
                           OpType::kRead},
                 f.collect());
  }
  f.sim.run();
  EXPECT_EQ(f.total_child_ops(), 1u);
  EXPECT_EQ(f.completions.size(), 8u);
  EXPECT_EQ(raid->stats().merged_batches, 1u);
}

TEST(RaidController, MergeDisabledIssuesPerRequest) {
  Fixture f;
  auto raid = f.make(6, RaidLevel::kRaid5, /*merge=*/false);
  for (int i = 0; i < 8; ++i) {
    raid->submit(IoRequest{static_cast<std::uint64_t>(i),
                           static_cast<Sector>(i) * 32, 16 * kKiB,
                           OpType::kRead},
                 f.collect());
  }
  f.sim.run();
  EXPECT_EQ(f.total_child_ops(), 8u);
}

TEST(RaidController, DoesNotMergeAcrossOpTypes) {
  Fixture f;
  auto raid = f.make(6);
  raid->submit(IoRequest{1, 0, 16 * kKiB, OpType::kRead}, f.collect());
  raid->submit(IoRequest{2, 32, 16 * kKiB, OpType::kWrite}, f.collect());
  f.sim.run();
  // Read stays one op; the write RMWs: 1 + 4 children.
  EXPECT_EQ(f.total_child_ops(), 5u);
}

TEST(RaidController, MergeCapsAtStripeWidth) {
  Fixture f;
  auto raid = f.make(6);
  // 6 contiguous 128 KB reads = 768 KB > 5-unit stripe width (640 KB):
  // must split into at least two merged ops.
  for (int i = 0; i < 6; ++i) {
    raid->submit(IoRequest{static_cast<std::uint64_t>(i),
                           static_cast<Sector>(i) * 256, 128 * kKiB,
                           OpType::kRead},
                 f.collect());
  }
  f.sim.run();
  EXPECT_GE(f.total_child_ops(), 6u);  // still one child per unit
  EXPECT_EQ(f.completions.size(), 6u);
}

TEST(RaidController, CompletionCarriesLatencyAndIds) {
  Fixture f;
  auto raid = f.make(6);
  raid->submit(IoRequest{77, 0, 4096, OpType::kRead}, f.collect());
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.completions[0].id, 77u);
  EXPECT_GT(f.completions[0].latency(), 0.0);
  EXPECT_EQ(f.completions[0].bytes, 4096u);
}

TEST(RaidController, OutstandingDrainsToZero) {
  Fixture f;
  auto raid = f.make(6);
  for (int i = 0; i < 10; ++i) {
    raid->submit(IoRequest{static_cast<std::uint64_t>(i),
                           static_cast<Sector>(i) * 1000, 8192,
                           OpType::kWrite},
                 f.collect());
  }
  EXPECT_GT(raid->outstanding(), 0u);
  f.sim.run();
  EXPECT_EQ(raid->outstanding(), 0u);
  EXPECT_EQ(f.completions.size(), 10u);
}

TEST(RaidController, AggregatesMemberDiskPower) {
  Fixture f;
  auto raid = f.make(6);
  EXPECT_DOUBLE_EQ(raid->power_at(0.0), 6.0);   // 1 W per recording disk
  EXPECT_DOUBLE_EQ(raid->energy_until(5.0), 30.0);
}

}  // namespace
}  // namespace tracer::storage
