// Pass fixture for tracer-lossless-double-format: %.17g round-trips every
// finite double; integer/string conversions and %% literals are out of
// scope; hex floats (%a) are exact by construction. Must be silent.
#include <cstdio>
#include <string>

namespace tracer::util {
std::string format(const char* fmt, ...);
}

void encode_power_field(char* buf, unsigned long n, double watts) {
  std::snprintf(buf, n, "%.17g", watts);
  std::snprintf(buf, n, "%.20g", watts);
  std::snprintf(buf, n, "%a", watts);
}

std::string encode_record(double joules, unsigned long long id) {
  std::string row = tracer::util::format("%llu=%.17g 100%%", id, joules);
  row += tracer::util::format("%s %d", "label", 42);
  return row;
}
