// Messenger module (§III-A1): the adapter between the evaluation host's
// control plane and a concrete power analyzer device. "TRACER is able to
// support various types of power analyzer devices with some modification on
// the messenger module" — the modification point is this one class.
//
// Serves POWER_INIT / POWER_START / POWER_STOP commands against a
// power::PowerAnalyzer and reports POWER_RESULT (current/voltage/watts).
//
// Concurrency: thread-confined like Communicator — one serve loop owns the
// Messenger, so initialized_/running_/replies_ need no locks. The
// PowerAnalyzer it drives is internally synchronised, so a sampling loop
// on another thread ticking sample_at() against a serve() thread handling
// POWER_STOP is safe (DESIGN.md §6e).
#pragma once

#include "net/communicator.h"
#include "net/message.h"
#include "power/power_analyzer.h"

namespace tracer::net {

class Messenger {
 public:
  explicit Messenger(power::PowerAnalyzer& analyzer) : analyzer_(analyzer) {}

  /// Handle one command; returns the reply (ACK, POWER_RESULT, or ERROR).
  /// `now` is the current test clock, needed by start/stop.
  Message handle(const Message& command, Seconds now);

  /// Serve commands over `comm` until peer hang-up or `idle_timeout` of
  /// silence. The test clock handed to handle() is wall-clock seconds
  /// since this call. Retransmitted commands (same request_id) get their
  /// cached reply re-sent ("net.rpc.dedup_hits") instead of re-running —
  /// a retried POWER_STOP whose first reply was lost must return the
  /// measured POWER_RESULT, not an "not running" error. The dedup window
  /// outlives one serve() call, so retries across a reconnect still hit.
  void serve(Communicator& comm, Seconds idle_timeout = 3600.0);

 private:
  Message power_result(std::uint32_t sequence) const;

  power::PowerAnalyzer& analyzer_;
  bool initialized_ = false;
  bool running_ = false;  ///< a measurement window is open (START..STOP)
  ReplyCache replies_;
};

}  // namespace tracer::net
