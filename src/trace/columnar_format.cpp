#include "trace/columnar_format.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "trace/blk_format.h"
#include "util/binary_io.h"

namespace tracer::trace {

namespace {
constexpr std::size_t kHeaderSize = 8;   // magic | u16 version | u16 reserved
constexpr std::size_t kTrailerSize = 12;  // u64 footer_offset | magic

enum Segment : std::size_t {
  kTimestamps = 0,
  kOffsets = 1,
  kSectors = 2,
  kBytes = 3,
  kOps = 4,
};

constexpr const char* kSegmentSuffix[5] = {".ts.tmp", ".off.tmp", ".sec.tmp",
                                           ".byt.tmp", ".ops.tmp"};

void put_le(unsigned char* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

std::uint64_t get_le(const unsigned char* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

double get_f64(const unsigned char* in) {
  const std::uint64_t bits = get_le(in, 8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("read_columnar: " + what);
}

void validate_timestamp(Seconds timestamp) {
  if (!std::isfinite(timestamp) || timestamp < 0.0) {
    corrupt("invalid bunch timestamp (must be finite and >= 0)");
  }
}

/// Expected segment offsets for given counts — the file skeleton is fully
/// determined by (bunch_count, package_count), so the reader recomputes it
/// and rejects footers that disagree.
struct Layout {
  std::uint64_t timestamps;
  std::uint64_t offsets;
  std::uint64_t sectors;
  std::uint64_t bytes;
  std::uint64_t ops;
  std::uint64_t end;  ///< first byte after the ops segment
};

Layout expected_layout(std::uint64_t bunch_count, std::uint64_t package_count) {
  Layout l{};
  l.timestamps = kHeaderSize;
  l.offsets = l.timestamps + bunch_count * 8;
  l.sectors = l.offsets + (bunch_count + 1) * 8;
  l.bytes = l.sectors + package_count * 8;
  l.ops = l.bytes + package_count * 4;
  l.end = l.ops + package_count;
  return l;
}
}  // namespace

// ---------------------------------------------------------------------------
// ColumnarWriter

ColumnarWriter::ColumnarWriter(std::string path, std::string device)
    : path_(std::move(path)), device_(std::move(device)) {
  for (std::size_t s = 0; s < 5; ++s) {
    temp_paths_[s] = path_ + kSegmentSuffix[s];
    segments_[s].open(temp_paths_[s], std::ios::binary | std::ios::trunc);
    if (!segments_[s]) {
      cleanup();
      throw std::runtime_error("write_columnar: cannot open temporary " +
                               temp_paths_[s]);
    }
  }
  // pkg_offsets is a prefix-sum column with bunch_count + 1 entries; the
  // leading zero goes out before any bunch arrives.
  unsigned char zero[8] = {};
  segments_[kOffsets].write(reinterpret_cast<const char*>(zero), 8);
}

ColumnarWriter::~ColumnarWriter() {
  if (!finished_) cleanup();
}

void ColumnarWriter::cleanup() noexcept {
  for (std::size_t s = 0; s < 5; ++s) {
    if (segments_[s].is_open()) segments_[s].close();
    if (!temp_paths_[s].empty()) std::remove(temp_paths_[s].c_str());
  }
}

void ColumnarWriter::add(const Bunch& bunch) {
  add(bunch.timestamp, bunch.packages);
}

void ColumnarWriter::add(Seconds timestamp,
                         const std::vector<IoPackage>& packages) {
  if (finished_) {
    throw std::runtime_error("write_columnar: add() after finish()");
  }
  if (bunch_count_ >= kMaxTraceBunches) {
    throw std::invalid_argument("write_columnar: too many bunches");
  }
  if (!std::isfinite(timestamp) || timestamp < 0.0) {
    throw std::invalid_argument(
        "write_columnar: invalid bunch timestamp (must be finite and >= 0)");
  }
  if (packages.size() > kMaxPackagesPerBunch) {
    throw std::invalid_argument("write_columnar: too many packages in bunch");
  }
  const std::size_t n = packages.size();
  unsigned char scalar[8];
  std::uint64_t timestamp_bits;
  std::memcpy(&timestamp_bits, &timestamp, sizeof(timestamp_bits));
  put_le(scalar, timestamp_bits, 8);
  segments_[kTimestamps].write(reinterpret_cast<const char*>(scalar), 8);

  // Column-encode the packages: one contiguous buffer per segment.
  std::vector<unsigned char> sectors(n * 8);
  std::vector<unsigned char> bytes(n * 4);
  std::vector<unsigned char> ops(n);
  for (std::size_t p = 0; p < n; ++p) {
    const IoPackage& pkg = packages[p];
    if (pkg.bytes > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "write_columnar: package size exceeds the 32-bit field");
    }
    put_le(sectors.data() + p * 8, pkg.sector, 8);
    put_le(bytes.data() + p * 4, static_cast<std::uint32_t>(pkg.bytes), 4);
    ops[p] = static_cast<unsigned char>(pkg.op);
  }
  segments_[kSectors].write(reinterpret_cast<const char*>(sectors.data()),
                            static_cast<std::streamsize>(sectors.size()));
  segments_[kBytes].write(reinterpret_cast<const char*>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()));
  segments_[kOps].write(reinterpret_cast<const char*>(ops.data()),
                        static_cast<std::streamsize>(ops.size()));

  package_count_ += n;
  ++bunch_count_;
  put_le(scalar, package_count_, 8);
  segments_[kOffsets].write(reinterpret_cast<const char*>(scalar), 8);

  for (std::size_t s = 0; s < 5; ++s) {
    if (!segments_[s].good()) {
      throw std::runtime_error("write_columnar: segment write failed");
    }
  }
}

void ColumnarWriter::append_segment(std::ofstream& out, std::size_t index) {
  segments_[index].close();
  std::ifstream in(temp_paths_[index], std::ios::binary);
  if (!in) {
    throw std::runtime_error("write_columnar: cannot reopen temporary " +
                             temp_paths_[index]);
  }
  // Chunked copy (an rdbuf() splice would fail-bit on empty segments).
  char buffer[1 << 16];
  while (in) {
    in.read(buffer, sizeof(buffer));
    const std::streamsize got = in.gcount();
    if (got > 0) out.write(buffer, got);
  }
  if (in.bad() || !out.good()) {
    throw std::runtime_error("write_columnar: segment copy failed");
  }
}

void ColumnarWriter::finish() {
  if (finished_) {
    throw std::runtime_error("write_columnar: finish() called twice");
  }
  try {
    for (std::size_t s = 0; s < 5; ++s) {
      segments_[s].flush();
      if (!segments_[s].good()) {
        throw std::runtime_error("write_columnar: segment write failed");
      }
    }
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_columnar: cannot open " + path_);
    }
    util::BinaryWriter writer(out);
    writer.raw(kColumnarMagic, sizeof(kColumnarMagic));
    writer.u16(kColumnarVersion);
    writer.u16(0);  // reserved

    const Layout layout = expected_layout(bunch_count_, package_count_);
    const std::uint64_t expected_after[5] = {layout.offsets, layout.sectors,
                                             layout.bytes, layout.ops,
                                             layout.end};
    for (std::size_t s = 0; s < 5; ++s) {
      append_segment(out, s);
      if (static_cast<std::uint64_t>(out.tellp()) != expected_after[s]) {
        throw std::runtime_error(
            "write_columnar: segment size mismatch while stitching");
      }
    }

    const std::uint64_t footer_offset = layout.end;
    writer.str(device_);
    writer.u64(bunch_count_);
    writer.u64(package_count_);
    writer.u64(layout.timestamps);
    writer.u64(layout.offsets);
    writer.u64(layout.sectors);
    writer.u64(layout.bytes);
    writer.u64(layout.ops);
    writer.u64(footer_offset);
    writer.raw(kColumnarTrailerMagic, sizeof(kColumnarTrailerMagic));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("write_columnar: stream write failed");
    }
  } catch (...) {
    cleanup();
    std::remove(path_.c_str());
    throw;
  }
  finished_ = true;
  cleanup();
}

void write_columnar_file(const std::string& path, const Trace& trace) {
  ColumnarWriter writer(path, trace.device);
  for (const auto& bunch : trace.bunches) {
    writer.add(bunch);
  }
  writer.finish();
}

// ---------------------------------------------------------------------------
// ColumnarTraceReader

ColumnarTraceReader::ColumnarTraceReader(const std::string& path)
    : map_(path) {
  const unsigned char* base = map_.data();
  const std::uint64_t size = map_.size();
  if (size < kHeaderSize + kTrailerSize) {
    corrupt("file too small for a v2 trace");
  }
  if (std::memcmp(base, kColumnarMagic, sizeof(kColumnarMagic)) != 0) {
    corrupt("bad magic (not a .replay2 trace)");
  }
  const auto version = static_cast<std::uint16_t>(get_le(base + 4, 2));
  if (version != kColumnarVersion) {
    corrupt("unsupported version " + std::to_string(version));
  }

  const unsigned char* trailer = base + size - kTrailerSize;
  if (std::memcmp(trailer + 8, kColumnarTrailerMagic,
                  sizeof(kColumnarTrailerMagic)) != 0) {
    corrupt("bad trailer magic (truncated file?)");
  }
  const std::uint64_t footer_offset = get_le(trailer, 8);
  if (footer_offset < kHeaderSize || footer_offset > size - kTrailerSize) {
    corrupt("footer offset out of range");
  }

  // Parse the footer with explicit bounds: device string, counts, offsets.
  std::uint64_t cursor = footer_offset;
  const std::uint64_t footer_end = size - kTrailerSize;
  const auto need = [&](std::uint64_t bytes) {
    if (footer_end - cursor < bytes) corrupt("truncated footer");
  };
  need(4);
  const std::uint64_t device_len = get_le(base + cursor, 4);
  cursor += 4;
  if (device_len > (1u << 20)) corrupt("implausible device name length");
  need(device_len);
  device_.assign(reinterpret_cast<const char*>(base + cursor),
                 static_cast<std::size_t>(device_len));
  cursor += device_len;
  need(8 * 7);  // bunch_count, package_count, 5 segment offsets
  bunch_count_ = get_le(base + cursor, 8);
  package_count_ = get_le(base + cursor + 8, 8);
  cursor += 16;
  if (bunch_count_ > kMaxTraceBunches) corrupt("implausible bunch count");
  if (package_count_ >
      bunch_count_ * static_cast<std::uint64_t>(kMaxPackagesPerBunch)) {
    corrupt("implausible package count");
  }

  const Layout layout = expected_layout(bunch_count_, package_count_);
  const std::uint64_t stored[5] = {
      get_le(base + cursor, 8),      get_le(base + cursor + 8, 8),
      get_le(base + cursor + 16, 8), get_le(base + cursor + 24, 8),
      get_le(base + cursor + 32, 8)};
  cursor += 40;
  if (cursor != footer_end) corrupt("footer size mismatch");
  if (stored[0] != layout.timestamps || stored[1] != layout.offsets ||
      stored[2] != layout.sectors || stored[3] != layout.bytes ||
      stored[4] != layout.ops) {
    corrupt("segment offsets disagree with the declared counts");
  }
  if (footer_offset != layout.end) {
    corrupt("segments do not fill the space before the footer");
  }
  timestamps_off_ = layout.timestamps;
  offsets_off_ = layout.offsets;
  sectors_off_ = layout.sectors;
  bytes_off_ = layout.bytes;
  ops_off_ = layout.ops;

  // Index integrity: the prefix-sum column must start at 0, never decrease,
  // never jump by more than a bunch can hold, and land exactly on the
  // package count. One sequential scan at open; windows trust it after.
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i <= bunch_count_; ++i) {
    const std::uint64_t off = pkg_offset(i);
    if (i == 0 && off != 0) corrupt("package index does not start at 0");
    if (off < previous) corrupt("package index decreases");
    if (off - previous > kMaxPackagesPerBunch) {
      corrupt("implausible package count in bunch");
    }
    previous = off;
  }
  if (previous != package_count_) {
    corrupt("package index does not sum to the package count");
  }
}

std::uint64_t ColumnarTraceReader::pkg_offset(std::uint64_t i) const {
  return get_le(map_.data() + offsets_off_ + i * 8, 8);
}

Seconds ColumnarTraceReader::timestamp(std::uint64_t i) const {
  if (i >= bunch_count_) {
    throw std::out_of_range("read_columnar: bunch index out of range");
  }
  const Seconds ts = get_f64(map_.data() + timestamps_off_ + i * 8);
  validate_timestamp(ts);
  return ts;
}

std::uint32_t ColumnarTraceReader::packages_in_bunch(std::uint64_t i) const {
  if (i >= bunch_count_) {
    throw std::out_of_range("read_columnar: bunch index out of range");
  }
  return static_cast<std::uint32_t>(pkg_offset(i + 1) - pkg_offset(i));
}

void ColumnarTraceReader::read_window(std::uint64_t first, std::uint64_t count,
                                      std::vector<Bunch>& out) const {
  if (first > bunch_count_ || count > bunch_count_ - first) {
    throw std::out_of_range("read_columnar: window out of range");
  }
  out.clear();
  out.resize(static_cast<std::size_t>(count));
  const unsigned char* base = map_.data();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t b = first + i;
    Bunch& bunch = out[static_cast<std::size_t>(i)];
    bunch.timestamp = get_f64(base + timestamps_off_ + b * 8);
    validate_timestamp(bunch.timestamp);
    const std::uint64_t begin = pkg_offset(b);
    const std::uint64_t end = pkg_offset(b + 1);
    bunch.packages.resize(static_cast<std::size_t>(end - begin));
    for (std::uint64_t p = begin; p < end; ++p) {
      IoPackage& pkg = bunch.packages[static_cast<std::size_t>(p - begin)];
      pkg.sector = get_le(base + sectors_off_ + p * 8, 8);
      pkg.bytes = get_le(base + bytes_off_ + p * 4, 4);
      const unsigned char op = base[ops_off_ + p];
      if (op > 1) corrupt("bad op code");
      pkg.op = static_cast<OpType>(op);
    }
  }
}

Bytes ColumnarTraceReader::total_bytes() const {
  const unsigned char* base = map_.data();
  Bytes total = 0;
  for (std::uint64_t p = 0; p < package_count_; ++p) {
    total += get_le(base + bytes_off_ + p * 4, 4);
  }
  return total;
}

double ColumnarTraceReader::read_ratio() const {
  if (package_count_ == 0) return 0.0;
  const unsigned char* base = map_.data();
  std::uint64_t reads = 0;
  for (std::uint64_t p = 0; p < package_count_; ++p) {
    if (base[ops_off_ + p] == 0) ++reads;
  }
  return static_cast<double>(reads) / static_cast<double>(package_count_);
}

void ColumnarTraceReader::advise_consumed(std::uint64_t first,
                                          std::uint64_t count) const {
  if (first > bunch_count_ || count > bunch_count_ - first || count == 0) {
    return;
  }
  const std::uint64_t pkg_begin = pkg_offset(first);
  const std::uint64_t pkg_end = pkg_offset(first + count);
  map_.advise_dont_need(timestamps_off_ + first * 8, count * 8);
  map_.advise_dont_need(offsets_off_ + first * 8, count * 8);
  map_.advise_dont_need(sectors_off_ + pkg_begin * 8, (pkg_end - pkg_begin) * 8);
  map_.advise_dont_need(bytes_off_ + pkg_begin * 4, (pkg_end - pkg_begin) * 4);
  map_.advise_dont_need(ops_off_ + pkg_begin, pkg_end - pkg_begin);
}

// ---------------------------------------------------------------------------
// ColumnarSource

ColumnarSource::ColumnarSource(
    std::shared_ptr<const ColumnarTraceReader> reader)
    : ColumnarSource(std::move(reader), Options{}) {}

ColumnarSource::ColumnarSource(
    std::shared_ptr<const ColumnarTraceReader> reader, Options options)
    : reader_(std::move(reader)), options_(options) {
  if (reader_ == nullptr) {
    throw std::invalid_argument("ColumnarSource: null reader");
  }
  if (options_.window_bunches == 0) options_.window_bunches = 1;
}

void ColumnarSource::load_window(std::size_t first) const {
  if (options_.evict_consumed && window_end_ > window_begin_ &&
      first >= window_end_) {
    // Strictly-forward consumption: the old window will not be revisited.
    reader_->advise_consumed(window_begin_, window_end_ - window_begin_);
  }
  const std::uint64_t total = reader_->bunch_count();
  const std::uint64_t count =
      std::min<std::uint64_t>(options_.window_bunches, total - first);
  reader_->read_window(first, count, window_);
  window_begin_ = first;
  window_end_ = first + count;
}

const std::vector<IoPackage>& ColumnarSource::packages(std::size_t i) const {
  if (i >= reader_->bunch_count()) {
    throw std::out_of_range("ColumnarSource: bunch index out of range");
  }
  if (i < window_begin_ || i >= window_end_) {
    load_window(i);
  }
  return window_[i - window_begin_].packages;
}

std::shared_ptr<const TraceSource> open_columnar_source(
    const std::string& path, ColumnarSource::Options options) {
  auto reader = std::make_shared<const ColumnarTraceReader>(path);
  return std::make_shared<ColumnarSource>(std::move(reader), options);
}

// ---------------------------------------------------------------------------
// Conversions

std::uint64_t convert_blk_to_columnar(const std::string& v1_path,
                                      const std::string& v2_path) {
  std::ifstream in(v1_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("convert: cannot open " + v1_path);
  }
  BlkStreamReader reader(in);
  ColumnarWriter writer(v2_path, reader.device());
  Bunch bunch;
  while (reader.next(bunch)) {
    writer.add(bunch);
  }
  writer.finish();
  return writer.bunch_count();
}

std::uint64_t convert_columnar_to_blk(const std::string& v2_path,
                                      const std::string& v1_path) {
  ColumnarTraceReader reader(v2_path);
  std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("convert: cannot open " + v1_path);
  }
  BlkStreamWriter writer(out, reader.device(), reader.bunch_count());
  constexpr std::uint64_t kWindow = 4096;
  std::vector<Bunch> window;
  for (std::uint64_t first = 0; first < reader.bunch_count();
       first += kWindow) {
    const std::uint64_t count =
        std::min(kWindow, reader.bunch_count() - first);
    reader.read_window(first, count, window);
    for (const Bunch& bunch : window) {
      writer.add(bunch);
    }
    reader.advise_consumed(first, count);
  }
  writer.finish();
  return reader.bunch_count();
}

}  // namespace tracer::trace
