// tracer-no-naked-sync: ban raw standard-library synchronisation primitives.
//
// PR 5 migrated every lock onto util::Mutex / util::MutexLock /
// util::CondVar (util/sync.h), which carry Clang thread-safety capability
// attributes so -Wthread-safety can prove lock discipline at compile time.
// A naked std::mutex re-opens the hole: the analysis cannot see through it,
// and GUARDED_BY contracts silently stop being checked. Until this check
// existed the wrapper rule was enforced only by review convention.
//
// Flags any mention (declaration, member, local, parameter, alias) of:
// std::mutex, std::timed_mutex, std::recursive_mutex,
// std::recursive_timed_mutex, std::shared_mutex, std::shared_timed_mutex,
// std::condition_variable, std::condition_variable_any, std::lock_guard,
// std::unique_lock, std::scoped_lock, std::shared_lock.
//
// Options:
//   AllowlistFiles — POSIX regex of exempt paths. Default "util/sync\.h$":
//                    the wrapper implementation is the one sanctioned home
//                    of the raw primitives.
#pragma once

#include "TracerTidyUtils.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseSet.h"

namespace clang::tidy::tracer {

class NoNakedSyncCheck : public ClangTidyCheck {
public:
  NoNakedSyncCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        AllowlistFiles(Options.get("AllowlistFiles", "util/sync\\.h$")) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowlistFiles;
  // A single declaration can surface as several overlapping TypeLocs
  // (elaborated + template-specialisation); report each location once.
  llvm::DenseSet<unsigned> Reported;
};

} // namespace clang::tidy::tracer
