// Example: head-to-head energy-efficiency comparison of the paper's two
// testbeds (6-HDD RAID-5 vs 4-SSD RAID-5) across a grid of workload modes —
// the §VI-G study as a reusable program.
//
// Usage: ssd_vs_hdd [collection_seconds]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/evaluation_host.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tracer;

  core::EvaluationOptions options;
  options.collection_duration = argc > 1 ? std::atof(argv[1]) : 3.0;
  if (!(options.collection_duration > 0.0)) {
    std::fprintf(stderr, "usage: %s [collection_seconds > 0]\n", argv[0]);
    return 1;
  }

  const auto repo = std::filesystem::temp_directory_path() / "tracer-example";
  core::EvaluationHost hdd(storage::ArrayConfig::hdd_testbed(6), repo,
                           options);
  core::EvaluationHost ssd(storage::ArrayConfig::ssd_testbed(4), repo,
                           options);

  std::printf("SSD vs HDD RAID-5 energy efficiency (load 100 %%)\n\n");
  util::Table table({"mode", "HDD MBPS", "HDD W", "HDD MBPS/kW", "SSD MBPS",
                     "SSD W", "SSD MBPS/kW", "SSD adv."});

  const std::vector<workload::WorkloadMode> modes = [] {
    std::vector<workload::WorkloadMode> out;
    for (Bytes size : {4 * kKiB, 64 * kKiB, 128 * kKiB}) {
      for (double random : {0.0, 1.0}) {
        workload::WorkloadMode mode;
        mode.request_size = size;
        mode.random_ratio = random;
        mode.read_ratio = 0.5;
        out.push_back(mode);
      }
    }
    return out;
  }();

  for (const auto& mode : modes) {
    const auto h = hdd.run_test(mode).record;
    const auto s = ssd.run_test(mode).record;
    // Compare on drive power (§VI-G): the SSD chassis would otherwise
    // drown 14 W of flash under 181.8 W of SAN enclosure.
    const double h_drives = h.avg_watts - 30.0;
    const double s_drives = s.avg_watts - 181.8;
    const double h_eff = h.mbps / (h_drives / 1000.0);
    const double s_eff = s.mbps / (s_drives / 1000.0);
    table.row()
        .add(util::format("%s rnd%d%%",
                          util::format_size(mode.request_size).c_str(),
                          static_cast<int>(mode.random_ratio * 100)))
        .add(h.mbps, 2)
        .add(h_drives, 1)
        .add(h_eff, 1)
        .add(s.mbps, 2)
        .add(s_drives, 1)
        .add(s_eff, 1)
        .add(s_eff / h_eff, 1)
        .done();
  }
  table.print(std::cout);
  std::printf(
      "\n(per-drive watts; 'SSD adv.' is the SSD/HDD efficiency ratio)\n");
  return 0;
}
