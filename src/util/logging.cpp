#include "util/logging.h"

#include <iostream>

namespace tracer::util {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  MutexLock lock(mutex_);
  std::cerr << "[tracer:" << to_string(level) << "] " << message << '\n';
}

}  // namespace tracer::util
