// Technique evaluation: TRACER judging a MAID/PDC-style spin-down policy —
// the use-case the paper's §I/§II motivates ("allows systems developers to
// compare among various energy-saving techniques"). For each I/O intensity,
// the same workload runs against the stock array and the power-managed
// array; the harness reports the Table I metric pair: energy savings and
// response time.
//
// Expected shape: large savings and tolerable latency on cold (archival)
// workloads; vanishing savings — and spin-up thrashing penalties — as
// intensity rises. The crossover is what a storage designer uses TRACER
// to find.
#include "bench_common.h"

#include "storage/disk_array.h"
#include "storage/power_policy.h"
#include "util/rng.h"

namespace {

using namespace tracer;

struct Outcome {
  double avg_watts = 0.0;
  double avg_response_ms = 0.0;
  double spin_ups = 0.0;
};

Outcome run(double iops, bool enable_policy, Seconds duration = 600.0) {
  sim::Simulator sim;
  storage::DiskArray array(sim, storage::ArrayConfig::hdd_testbed(6));
  storage::SpinDownPolicyParams policy;
  policy.idle_timeout = 10.0;
  policy.min_active_disks = 1;  // MAID-style hot tier
  storage::SpinDownManager manager(sim, array.hdd_disks(), policy);
  if (enable_policy) manager.schedule(0.0, duration);

  util::Rng rng(31);
  const Sector span = array.capacity() / kSectorSize - 256;
  double total_latency = 0.0;
  std::uint64_t completions = 0;

  Seconds t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / iops);
    if (t >= duration) break;
    const Sector sector = rng.below(span / 128) * 128;
    sim.schedule_at(t, [&, sector] {
      array.submit(storage::IoRequest{1, sector, 64 * kKiB, OpType::kRead},
                   [&](const storage::IoCompletion& c) {
                     total_latency += c.latency();
                     ++completions;
                   });
    });
  }
  sim.run();

  Outcome outcome;
  const Seconds end = std::max(duration, sim.now());
  outcome.avg_watts = array.energy_until(end) / end;
  outcome.avg_response_ms =
      completions ? total_latency / static_cast<double>(completions) * 1e3
                  : 0.0;
  std::uint64_t spin_ups = 0;
  for (auto* disk : array.hdd_disks()) spin_ups += disk->spin_ups();
  outcome.spin_ups = static_cast<double>(spin_ups);
  return outcome;
}

}  // namespace

int main() {
  using namespace tracer;
  bench::print_header(
      "Technique evaluation — MAID/PDC-style spin-down vs stock array",
      "big savings on cold workloads, penalty fades to zero as load rises");

  util::Table table({"IOPS", "stock W", "policy W", "saved %", "stock ms",
                     "policy ms", "spin-ups"});
  std::vector<double> savings;
  std::vector<double> penalties;
  for (double iops : {0.02, 0.1, 0.5, 2.0, 10.0, 50.0}) {
    const Outcome stock = run(iops, false);
    const Outcome managed = run(iops, true);
    const double saved =
        (stock.avg_watts - managed.avg_watts) / stock.avg_watts * 100.0;
    savings.push_back(saved);
    penalties.push_back(managed.avg_response_ms - stock.avg_response_ms);
    table.row()
        .add(iops, 2)
        .add(stock.avg_watts, 1)
        .add(managed.avg_watts, 1)
        .add(saved, 1)
        .add(stock.avg_response_ms, 1)
        .add(managed.avg_response_ms, 1)
        .add(managed.spin_ups, 0)
        .done();
  }
  table.print(std::cout);

  bench::print_verdict(savings.front() > 30.0,
                       "cold workload saves >30 % of array power");
  bench::print_verdict(savings.back() < 10.0,
                       "busy workload keeps disks spinning (savings <10 %)");
  bench::print_verdict(penalties.front() > 100.0,
                       "cold-workload latency pays spin-up stalls "
                       "(>100 ms average penalty)");
  bench::print_verdict(
      penalties.back() < penalties.front() / 10.0,
      "latency penalty fades once the workload keeps disks hot");
  return 0;
}
