#include "db/journal.h"

#include <stdexcept>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tracer::db {

namespace {

const std::vector<std::string>& header_row() {
  static const std::vector<std::string> kHeader = {
      "test_id",         "timestamp",  "device",
      "trace",           "request_size",
      "random_ratio",    "read_ratio", "load_proportion",
      "avg_amps",        "avg_volts",  "avg_watts",
      "joules",          "iops",       "mbps",
      "avg_response_ms", "iops_per_watt", "mbps_per_kilowatt",
      "power_valid"};
  return kHeader;
}

bool parse_row(const std::vector<std::string>& fields, TestRecord& out) {
  // Rows written before the power_valid column existed are one field
  // short; accept them with the flag defaulting to true.
  if (fields.size() != header_row().size() &&
      fields.size() != header_row().size() - 1) {
    return false;
  }
  try {
    out.test_id = std::stoull(fields[0]);
    out.timestamp = fields[1];
    out.device = fields[2];
    out.trace_name = fields[3];
    out.request_size = std::stoull(fields[4]);
    out.random_ratio = std::stod(fields[5]);
    out.read_ratio = std::stod(fields[6]);
    out.load_proportion = std::stod(fields[7]);
    out.avg_amps = std::stod(fields[8]);
    out.avg_volts = std::stod(fields[9]);
    out.avg_watts = std::stod(fields[10]);
    out.joules = std::stod(fields[11]);
    out.iops = std::stod(fields[12]);
    out.mbps = std::stod(fields[13]);
    out.avg_response_ms = std::stod(fields[14]);
    out.iops_per_watt = std::stod(fields[15]);
    out.mbps_per_kilowatt = std::stod(fields[16]);
    out.power_valid = fields.size() < 18 || std::stoull(fields[17]) != 0;
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

CampaignJournal::CampaignJournal(std::filesystem::path path)
    : path_(std::move(path)) {
  const bool fresh =
      !std::filesystem::exists(path_) || std::filesystem::file_size(path_) == 0;
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  // A crash can leave a torn final row with no trailing newline; terminate
  // it before appending so the next row is not glued onto the wreckage.
  bool needs_newline = false;
  if (!fresh) {
    std::ifstream in(path_, std::ios::binary);
    in.seekg(-1, std::ios::end);
    char last = '\n';
    if (in.get(last)) needs_newline = last != '\n';
  }
  // Constructor-time lock: uncontended (no other thread can hold a
  // reference yet), present for the thread-safety analysis.
  util::MutexLock lock(mutex_);
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("CampaignJournal: cannot open " + path_.string());
  }
  if (needs_newline) out_ << '\n';
  if (fresh) {
    util::CsvWriter csv(out_);
    csv.write_row(header_row());
    out_.flush();
  }
}

void CampaignJournal::append(const TestRecord& r) {
  util::MutexLock lock(mutex_);
  util::CsvWriter csv(out_);
  csv.row()
      .add(r.test_id)
      .add(r.timestamp)
      .add(r.device)
      .add(r.trace_name)
      .add(r.request_size)
      .add(r.random_ratio, 4)
      .add(r.read_ratio, 4)
      .add(r.load_proportion, 4)
      .add(r.avg_amps, 4)
      .add(r.avg_volts, 2)
      .add(r.avg_watts, 3)
      .add(r.joules, 3)
      .add(r.iops, 2)
      .add(r.mbps, 3)
      .add(r.avg_response_ms, 3)
      .add(r.iops_per_watt, 4)
      .add(r.mbps_per_kilowatt, 3)
      .add(static_cast<std::uint64_t>(r.power_valid ? 1 : 0))
      .done();
  out_.flush();
  if (!out_) {
    throw std::runtime_error("CampaignJournal: write failed for " +
                             path_.string());
  }
}

std::vector<TestRecord> CampaignJournal::load(
    const std::filesystem::path& path) {
  std::vector<TestRecord> records;
  if (!std::filesystem::exists(path)) return records;
  const auto rows = util::CsvReader::load(path.string());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 && !rows[i].empty() && rows[i][0] == "test_id") continue;
    TestRecord record;
    if (parse_row(rows[i], record)) {
      records.push_back(std::move(record));
    } else {
      TRACER_LOG(kWarn) << "journal " << path.string() << ": skipping "
                        << "malformed row " << i + 1;
    }
  }
  return records;
}

std::string CampaignJournal::key(const std::string& trace_name,
                                 double load_proportion) {
  return util::format("%s@%.4f", trace_name.c_str(), load_proportion);
}

}  // namespace tracer::db
