#include "workload/web_server_model.h"

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace tracer::workload {
namespace {

WebServerParams small_params() {
  WebServerParams params;
  params.duration = 60.0;
  params.fs_size = 4ULL * 1024 * 1024 * 1024;
  params.dataset = 512ULL * 1024 * 1024;
  params.session_rate = 40.0;
  params.seed = 5;
  return params;
}

TEST(WebServerModel, RejectsInconsistentSizes) {
  WebServerParams params = small_params();
  params.dataset = params.fs_size * 2;
  EXPECT_THROW(WebServerModel{params}, std::invalid_argument);
  params = small_params();
  params.duration = 0.0;
  EXPECT_THROW(WebServerModel{params}, std::invalid_argument);
}

TEST(WebServerModel, ObjectPopulationCoversDataset) {
  WebServerModel model(small_params());
  EXPECT_GT(model.object_count(), 100u);
}

TEST(WebServerModel, TraceMatchesConfiguredReadRatio) {
  WebServerModel model(small_params());
  const trace::Trace trace = model.generate();
  EXPECT_NEAR(trace.read_ratio(), small_params().read_ratio, 0.03);
}

TEST(WebServerModel, MeanChunkSizeNearTableIII) {
  WebServerParams params = small_params();
  params.duration = 120.0;
  WebServerModel model(params);
  const trace::Trace trace = model.generate();
  const double mean_kb = trace.mean_request_size() / 1024.0;
  EXPECT_NEAR(mean_kb, 21.5, 4.0);
}

TEST(WebServerModel, DurationBoundsArrivals) {
  WebServerModel model(small_params());
  const trace::Trace trace = model.generate();
  // Session chunks may trail slightly past the last arrival, but the trace
  // cannot meaningfully exceed the configured duration.
  EXPECT_LE(trace.duration(), small_params().duration * 1.05);
  EXPECT_GT(trace.duration(), small_params().duration * 0.5);
}

TEST(WebServerModel, AddressesStayInsideFileSystem) {
  WebServerModel model(small_params());
  const trace::Trace trace = model.generate();
  const Sector limit = small_params().fs_size / kSectorSize;
  for (const auto& bunch : trace.bunches) {
    for (const auto& pkg : bunch.packages) {
      EXPECT_LE(pkg.sector + pkg.bytes / kSectorSize, limit + 8);
    }
  }
}

TEST(WebServerModel, SessionsReadObjectsSequentially) {
  WebServerModel model(small_params());
  const trace::Trace trace = model.generate();
  const auto stats = trace::compute_stats(trace);
  // Streaming sessions produce a visible sequential component even after
  // interleaving (bunching reorders within a millisecond only).
  EXPECT_GT(stats.sequential_ratio, 0.2);
}

TEST(WebServerModel, DiurnalSwingShapesIntensity) {
  WebServerParams params = small_params();
  params.duration = 600.0;
  params.diurnal_period = 200.0;
  params.diurnal_swing = 0.8;
  WebServerModel model(params);
  const trace::Trace trace = model.generate();
  // Bin packages per 20 s; intensity must visibly vary (crests/troughs).
  std::vector<double> bins(30, 0.0);
  for (const auto& bunch : trace.bunches) {
    const auto bin = static_cast<std::size_t>(bunch.timestamp / 20.0);
    if (bin < bins.size()) bins[bin] += static_cast<double>(bunch.packages.size());
  }
  double lo = bins[0];
  double hi = bins[0];
  for (double b : bins) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_GT(hi, lo * 1.5);
}

TEST(WebServerModel, DeterministicForSeed) {
  WebServerModel a(small_params());
  WebServerModel b(small_params());
  EXPECT_EQ(a.generate(), b.generate());
  WebServerParams other = small_params();
  other.seed = 6;
  WebServerModel c(other);
  EXPECT_NE(a.generate(), c.generate());
}

TEST(WebServerModel, ZipfPopularityCreatesHotObjects) {
  WebServerParams params = small_params();
  params.duration = 300.0;
  WebServerModel model(params);
  const trace::Trace trace = model.generate();
  const auto stats = trace::compute_stats(trace);
  // The touched footprint is well below total bytes moved (re-reads of hot
  // objects dominate).
  EXPECT_LT(stats.dataset_bytes, stats.total_bytes / 2);
}

}  // namespace
}  // namespace tracer::workload
