// Zero-copy trace view: an immutable, shared underlying Trace plus a
// compact bunch-index selection and a lazy inter-arrival scale factor.
//
// The campaign pipeline (peak trace -> proportional filter -> interarrival
// scale -> replay) used to deep-copy every selected Bunch — and its
// packages vector — once per test. A TraceView instead records *which*
// bunch indices are selected (4 bytes per selected bunch) and *how*
// timestamps are remapped (one double), deferring both to iteration time.
// Selecting k-of-10 bunches from a 50 000-bunch peak trace costs a ~20 KB
// index vector rather than megabytes of package copies.
//
// Ownership rules (see DESIGN.md §8):
//   * A view holds `shared_ptr<const Trace>`: the underlying trace is
//     immutable shared state, safe to read from many replay threads at
//     once (EvaluationHost's peak-trace cache relies on this).
//   * `borrowed()` makes a non-owning view for a caller-kept Trace; the
//     caller must keep the trace alive for the view's lifetime. It exists
//     so the materializing APIs can wrap the view path without copying.
//   * Views are cheap to copy (two shared_ptrs and a double) and cheap to
//     compose: filter-of-view and scale-of-view return new views over the
//     same underlying trace.
//   * `materialize()` is the only operation that copies bunches; call it
//     when a plain Trace must outlive the underlying storage (e.g. when
//     writing a filtered trace to the repository).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace tracer::trace {

class TraceView {
 public:
  /// Index type of the bunch selection. u32 keeps the selection compact;
  /// the .replay format already caps traces at 2^32 bunches.
  using Index = std::uint32_t;

  TraceView() = default;

  /// Full view of a shared trace (selects every bunch, unit time scale).
  explicit TraceView(std::shared_ptr<const Trace> trace);

  /// Non-owning view of `trace`; the caller guarantees `trace` outlives
  /// the view and every view derived from it.
  static TraceView borrowed(const Trace& trace);

  /// View that takes ownership of a materialized trace.
  static TraceView owning(Trace trace);

  bool valid() const { return trace_ != nullptr; }
  bool empty() const { return bunch_count() == 0; }
  const std::string& device() const;

  std::size_t bunch_count() const {
    if (trace_ == nullptr) return 0;
    return selection_ ? selection_->size() : trace_->bunches.size();
  }

  /// Underlying bunch of the i-th selected position (original timestamp).
  const Bunch& bunch(std::size_t i) const {
    return trace_->bunches[selection_ ? (*selection_)[i] : i];
  }

  /// Replay timestamp of the i-th selected bunch: the underlying timestamp
  /// divided by the accumulated intensity factor (lazy InterarrivalScaler).
  Seconds timestamp(std::size_t i) const {
    return bunch(i).timestamp / time_divisor_;
  }

  const std::vector<IoPackage>& packages(std::size_t i) const {
    return bunch(i).packages;
  }

  /// Accumulated intensity factor (timestamps are divided by it).
  double time_divisor() const { return time_divisor_; }
  bool selects_all() const { return selection_ == nullptr; }
  const std::shared_ptr<const Trace>& shared_trace() const { return trace_; }

  // Aggregates over the selection, mirroring Trace's accessors.
  std::uint64_t package_count() const;
  Bytes total_bytes() const;
  /// Duration in the *scaled* time domain (through the last selection).
  Seconds duration() const;
  double read_ratio() const;
  double mean_request_size() const;

  /// Restrict to `positions` — strictly increasing indices into this
  /// view's current selection (composition: a filter of a filtered view
  /// indexes view positions, not underlying indices).
  TraceView select(std::vector<Index> positions) const;

  /// Multiply replay intensity by `factor` (> 0): timestamps divide by
  /// `factor` lazily at iteration time.
  TraceView scaled(double factor) const;

  /// Deep-copy the selection into a plain Trace with remapped timestamps.
  Trace materialize() const;

 private:
  std::shared_ptr<const Trace> trace_;
  std::shared_ptr<const std::vector<Index>> selection_;  ///< null = all
  double time_divisor_ = 1.0;
};

}  // namespace tracer::trace
