// Annotated synchronization primitives (docs/STATIC_ANALYSIS.md).
//
// Every mutex in src/ is a util::Mutex, every guarded field carries
// TRACER_GUARDED_BY, and every function with a locking contract is annotated
// with TRACER_REQUIRES / TRACER_ACQUIRE / TRACER_RELEASE / TRACER_EXCLUDES.
// Under Clang, -Wthread-safety (promoted to an error by tracer_warnings)
// turns those contracts into compile-time checks: an unguarded access to a
// guarded field, a missing unlock, or a call that needs a lock the caller
// does not hold all fail the build. Under GCC the macros expand to nothing
// and the wrappers cost exactly what the std primitives they wrap cost —
// the annotations are documentation there, enforced by the Clang CI job.
//
// The wrappers deliberately expose a narrow surface:
//   * Mutex       — std::mutex with the capability attribute.
//   * MutexLock   — scoped lock (std::unique_lock inside, so CondVar can
//                   wait on it and mid-scope unlock()/lock() is possible).
//   * MutexPairLock — deadlock-free two-mutex scope (std::lock order).
//   * CondVar     — std::condition_variable over Mutex/MutexLock.
//
// Condition-variable idiom: write wait loops by hand,
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// instead of passing a predicate lambda. The analysis cannot see that a
// predicate lambda runs with the lock held (it is invoked from inside the
// unannotated std::condition_variable::wait), so a hand-written loop is the
// form that both humans and the checker can read.
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>

// Clang exposes the thread-safety attributes; GCC does not. The macros
// compile away everywhere else so annotated headers stay portable.
#if defined(__clang__)
#define TRACER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TRACER_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define TRACER_CAPABILITY(x) TRACER_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define TRACER_SCOPED_CAPABILITY TRACER_THREAD_ANNOTATION(scoped_lockable)
/// Field is only read/written with the given mutex held.
#define TRACER_GUARDED_BY(x) TRACER_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose pointee is guarded by the given mutex.
#define TRACER_PT_GUARDED_BY(x) TRACER_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the given mutex(es) to call this function.
#define TRACER_REQUIRES(...) \
  TRACER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define TRACER_ACQUIRE(...) \
  TRACER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function attempts acquisition; first arg is the success return value.
#define TRACER_TRY_ACQUIRE(...) \
  TRACER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es) the caller holds.
#define TRACER_RELEASE(...) \
  TRACER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Caller must NOT hold the given mutex(es) (deadlock guard).
#define TRACER_EXCLUDES(...) TRACER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define TRACER_RETURN_CAPABILITY(x) TRACER_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: skip analysis for one function (justify at the call site).
#define TRACER_NO_THREAD_SAFETY_ANALYSIS \
  TRACER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tracer::util {

class CondVar;

/// std::mutex with the Clang capability attribute. Prefer MutexLock over
/// calling lock()/unlock() directly.
class TRACER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TRACER_ACQUIRE() { mutex_.lock(); }
  void unlock() TRACER_RELEASE() { mutex_.unlock(); }
  bool try_lock() TRACER_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class MutexPairLock;
  std::mutex mutex_;
};

/// RAII scope lock over Mutex. Backed by std::unique_lock so CondVar can
/// wait on it and unlock()/lock() can bracket a slow call mid-scope; the
/// destructor releases only if still held.
class TRACER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TRACER_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() TRACER_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. around a blocking callback).
  void unlock() TRACER_RELEASE() { lock_.unlock(); }
  /// Re-acquire after unlock().
  void lock() TRACER_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Deadlock-free two-mutex scope (std::lock ordering); used where two
/// objects' states must be consistent at once, e.g. Database move-assign.
class TRACER_SCOPED_CAPABILITY MutexPairLock {
 public:
  MutexPairLock(Mutex& a, Mutex& b) TRACER_ACQUIRE(a, b)
      : a_(a.mutex_), b_(b.mutex_) {
    std::lock(a_, b_);
  }
  ~MutexPairLock() TRACER_RELEASE() {
    a_.unlock();
    b_.unlock();
  }

  MutexPairLock(const MutexPairLock&) = delete;
  MutexPairLock& operator=(const MutexPairLock&) = delete;

 private:
  std::mutex& a_;
  std::mutex& b_;
};

/// std::condition_variable over Mutex/MutexLock. Callers hold the MutexLock
/// across wait() (the capability is logically held for the whole scope even
/// though wait releases it internally — that matches the program's
/// invariants at every statement boundary the analysis checks).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& t) {
    return cv_.wait_until(lock.lock_, t);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace tracer::util
