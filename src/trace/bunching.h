// Assemble timestamped packages into the Fig 4 bunch structure. Shared by
// the synthetic real-world models and the SRT transformer.
#pragma once

#include <utility>
#include <vector>

#include "trace/trace.h"

namespace tracer::trace {

using TimedPackage = std::pair<Seconds, IoPackage>;

/// Sort packages by time, rebase to t = 0, and group packages that arrive
/// within `window` seconds of a bunch's first package into that bunch.
Trace bunch_packages(std::vector<TimedPackage> packages, Seconds window,
                     const std::string& device);

}  // namespace tracer::trace
