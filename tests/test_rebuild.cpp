#include "storage/rebuild.h"

#include <gtest/gtest.h>

#include "storage/disk_array.h"

namespace tracer::storage {
namespace {

struct Fixture {
  sim::Simulator sim;
  std::unique_ptr<DiskArray> array;

  explicit Fixture(std::size_t disks = 4) {
    ArrayConfig config = ArrayConfig::hdd_testbed(disks);
    array = std::make_unique<DiskArray>(sim, config);
  }

  RaidController& controller() { return array->controller(); }
};

TEST(RebuildProcess, RequiresDegradedController) {
  Fixture f;
  EXPECT_THROW(RebuildProcess(f.sim, f.controller(), RebuildParams{}),
               std::logic_error);
}

TEST(RebuildProcess, ValidatesParameters) {
  Fixture f;
  f.controller().fail_disk(1);
  RebuildParams bad_chunk;
  bad_chunk.chunk = 1000;  // not a stripe-unit multiple
  EXPECT_THROW(RebuildProcess(f.sim, f.controller(), bad_chunk),
               std::invalid_argument);
  RebuildParams bad_rate;
  bad_rate.throttle_mbps = 0.0;
  EXPECT_THROW(RebuildProcess(f.sim, f.controller(), bad_rate),
               std::invalid_argument);
}

TEST(RebuildProcess, RestoresControllerOnCompletion) {
  Fixture f;
  f.controller().fail_disk(2);
  RebuildParams params;
  params.chunk = kMiB;
  params.throttle_mbps = 1000.0;  // effectively unthrottled
  params.limit_bytes = 32 * kMiB;
  bool completed = false;
  RebuildProcess rebuild(f.sim, f.controller(), params,
                         [&completed] { completed = true; });
  EXPECT_DOUBLE_EQ(rebuild.progress(), 0.0);
  rebuild.start();
  EXPECT_TRUE(rebuild.running());
  f.sim.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(rebuild.complete());
  EXPECT_FALSE(rebuild.running());
  EXPECT_DOUBLE_EQ(rebuild.progress(), 1.0);
  EXPECT_EQ(rebuild.rebuilt_bytes(), 32 * kMiB);
  EXPECT_FALSE(f.controller().degraded());
}

TEST(RebuildProcess, ThrottleBoundsRebuildRate) {
  auto run = [](double mbps) {
    Fixture f;
    f.controller().fail_disk(0);
    RebuildParams params;
    params.chunk = kMiB;
    params.throttle_mbps = mbps;
    params.limit_bytes = 16 * kMiB;
    RebuildProcess rebuild(f.sim, f.controller(), params);
    rebuild.start();
    f.sim.run();
    return rebuild.elapsed();
  };
  const Seconds slow = run(5.0);
  const Seconds fast = run(50.0);
  // 16 MiB at 5 MB/s >= ~3.3 s; at 50 MB/s the media rate dominates.
  EXPECT_GE(slow, 16.0 * 1048576 / (5.0 * 1e6) * 0.95);
  EXPECT_LT(fast, slow / 3.0);
}

TEST(RebuildProcess, CannotStartTwice) {
  Fixture f;
  f.controller().fail_disk(1);
  RebuildParams params;
  params.limit_bytes = kMiB;
  RebuildProcess rebuild(f.sim, f.controller(), params);
  rebuild.start();
  EXPECT_THROW(rebuild.start(), std::logic_error);
  f.sim.run();
  EXPECT_THROW(rebuild.start(), std::logic_error);
}

TEST(RebuildProcess, ForegroundIoSlowsDuringRebuild) {
  // Foreground random reads contend with rebuild traffic on the member
  // queues: average latency during an aggressive rebuild must exceed the
  // quiescent baseline.
  auto run = [](bool with_rebuild) {
    Fixture f;
    f.controller().fail_disk(1);
    RebuildParams params;
    params.chunk = kMiB;
    params.throttle_mbps = 500.0;  // aggressive
    params.limit_bytes = 64 * kMiB;
    RebuildProcess rebuild(f.sim, f.controller(), params);
    if (with_rebuild) rebuild.start();

    util::Rng rng(17);
    double total_latency = 0.0;
    int completions = 0;
    const Sector span = f.array->capacity() / kSectorSize - 256;
    for (int i = 0; i < 40; ++i) {
      const Seconds at = 0.01 * (i + 1);
      const Sector sector = rng.below(span / 8) * 8;
      f.sim.schedule_at(at, [&, sector] {
        f.array->submit(IoRequest{1, sector, 16 * kKiB, OpType::kRead},
                        [&](const IoCompletion& c) {
                          total_latency += c.latency();
                          ++completions;
                        });
      });
    }
    f.sim.run();
    EXPECT_EQ(completions, 40);
    return total_latency / completions;
  };
  EXPECT_GT(run(true), run(false) * 1.2);
}

TEST(RebuildProcess, FullDiskRebuildOnSmallGeometry) {
  // Exercise the no-limit path on a deliberately tiny geometry.
  sim::Simulator sim;
  std::vector<std::unique_ptr<HddModel>> disks;
  std::vector<BlockDevice*> raw;
  HddParams hdd;
  hdd.capacity = 16 * kMiB;
  hdd.cylinders = 64;
  for (int i = 0; i < 3; ++i) {
    disks.push_back(std::make_unique<HddModel>(sim, hdd, i + 1));
    raw.push_back(disks.back().get());
  }
  RaidGeometry geometry(RaidLevel::kRaid5, 3, 128 * kKiB, hdd.capacity);
  RaidController controller(sim, geometry, std::move(raw));
  controller.fail_disk(0);
  RebuildParams params;
  params.throttle_mbps = 1000.0;
  RebuildProcess rebuild(sim, controller, params);
  rebuild.start();
  sim.run();
  EXPECT_TRUE(rebuild.complete());
  EXPECT_EQ(rebuild.rebuilt_bytes(), geometry.rows() * geometry.stripe_unit);
  EXPECT_FALSE(controller.degraded());
}

}  // namespace
}  // namespace tracer::storage
