#!/usr/bin/env python3
"""Perf guardrail over BENCH_micro.json (google-benchmark JSON output).

Fails (exit 1) when the sharded replay kernel's speedup over the classic
kernel drops below the floor:

    speedup = real_time(BM_ReplayHddArray) /
              real_time(BM_ReplayHddArraySharded/<shards>)

CI runs this in the bench-smoke job after micro_core; a PR labelled
`skip-perf-guardrail` skips the step (noisy runners, or a change that
knowingly trades replay speed for something else — say why in the PR).

Usage: check_bench_guardrail.py BENCH_micro.json [--shards=4] [--min-speedup=2.0]
"""

import json
import sys


def parse_args(argv):
    path = None
    shards = 4
    min_speedup = 2.0
    for arg in argv[1:]:
        if arg.startswith("--shards="):
            shards = int(arg.split("=", 1)[1])
        elif arg.startswith("--min-speedup="):
            min_speedup = float(arg.split("=", 1)[1])
        elif path is None:
            path = arg
        else:
            sys.exit(f"unexpected argument: {arg}")
    if path is None:
        sys.exit(__doc__)
    return path, shards, min_speedup


def best_time(benchmarks, name):
    """Minimum real_time across entries for `name` (repetitions and
    aggregate rows both appear in the JSON; the minimum of the raw
    repetitions is the least-noisy estimator on shared runners)."""
    times = [
        b["real_time"]
        for b in benchmarks
        if b.get("run_name", b["name"]) == name
        and b.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        sys.exit(f"FATAL: benchmark '{name}' not found in results")
    return min(times)


def main(argv):
    path, shards, min_speedup = parse_args(argv)
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]

    classic = best_time(benchmarks, "BM_ReplayHddArray")
    sharded = best_time(benchmarks, f"BM_ReplayHddArraySharded/{shards}")
    speedup = classic / sharded
    print(f"BM_ReplayHddArray:           {classic:12.0f} ns")
    print(f"BM_ReplayHddArraySharded/{shards}: {sharded:12.0f} ns")
    print(f"speedup: {speedup:.2f}x (guardrail: {min_speedup:.2f}x)")
    if speedup < min_speedup:
        print(
            f"FAIL: sharded replay speedup {speedup:.2f}x is below the "
            f"{min_speedup:.2f}x guardrail",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
