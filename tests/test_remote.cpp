#include "core/remote.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

namespace tracer::core {
namespace {

class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tracer_remote_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    options_.collection_duration = 0.5;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  workload::WorkloadMode mode(double load = 0.5) {
    workload::WorkloadMode m;
    m.request_size = 16 * kKiB;
    m.random_ratio = 0.5;
    m.read_ratio = 0.5;
    m.load_proportion = load;
    return m;
  }

  std::filesystem::path dir_;
  EvaluationOptions options_;
};

TEST_F(RemoteTest, ModeEncodingRoundTrips) {
  const workload::WorkloadMode original = mode(0.3);
  const auto decoded = decode_mode(encode_mode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST_F(RemoteTest, ModeDecodingRejectsIncompleteMessages) {
  net::Message message;
  message.type = net::MessageType::kConfigureTest;
  message.set_u64("request_size", 4096);
  EXPECT_FALSE(decode_mode(message).has_value());
}

TEST_F(RemoteTest, ModeDecodingRejectsExtraFields) {
  // Strict decode: an unexpected field means the frame came from a
  // different protocol revision (or got mangled); trusting the remaining
  // fields would mask it.
  net::Message message = encode_mode(mode(0.3));
  message.set_double("surprise", 1.0);
  EXPECT_FALSE(decode_mode(message).has_value());
}

db::TestRecord sample_record() {
  db::TestRecord record;
  record.device = "raid5-hdd6";
  record.trace_name = "trace";
  record.request_size = 4096;
  record.random_ratio = 0.5;
  record.read_ratio = 0.6;
  record.load_proportion = 0.4;
  record.avg_amps = 1.5;
  record.avg_volts = 12.0;
  record.avg_watts = 81.25;
  record.joules = 400.0;
  record.iops = 432.1;
  record.mbps = 1.77;
  record.avg_response_ms = 3.5;
  record.iops_per_watt = 5.32;
  record.mbps_per_kilowatt = 21.8;
  return record;
}

TEST_F(RemoteTest, RecordDecodingRejectsEveryMissingField) {
  // The old decoder default-filled absent doubles with zero, turning a
  // half-lost frame into a plausible record of an idle system. Now any
  // missing field rejects the whole frame.
  const net::Message complete = encode_record(sample_record());
  ASSERT_TRUE(decode_record(complete).has_value());
  for (const auto& [key, value] : complete.fields) {
    net::Message mutilated = complete;
    mutilated.fields.erase(key);
    EXPECT_FALSE(decode_record(mutilated).has_value())
        << "decoded despite missing field " << key;
  }
}

TEST_F(RemoteTest, RecordDecodingRejectsExtraFields) {
  net::Message message = encode_record(sample_record());
  message.set("extra", "field");
  EXPECT_FALSE(decode_record(message).has_value());
}

TEST_F(RemoteTest, RecordDecodingRejectsMistypedFields) {
  net::Message message = encode_record(sample_record());
  message.set("iops", "not a number");
  EXPECT_FALSE(decode_record(message).has_value());
  message = encode_record(sample_record());
  message.set_u64("power_valid", 2);  // only 0/1 are meaningful
  EXPECT_FALSE(decode_record(message).has_value());
}

TEST_F(RemoteTest, PowerValidFlagRoundTripsOverWire) {
  db::TestRecord degraded = sample_record();
  degraded.power_valid = false;
  const auto decoded = decode_record(encode_record(degraded));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->power_valid);
  const auto healthy = decode_record(encode_record(sample_record()));
  ASSERT_TRUE(healthy.has_value());
  EXPECT_TRUE(healthy->power_valid);
}

TEST_F(RemoteTest, RecordEncodingRoundTrips) {
  db::TestRecord record;
  record.device = "raid5-hdd6";
  record.trace_name = "trace";
  record.request_size = 4096;
  record.load_proportion = 0.4;
  record.avg_watts = 81.25;
  record.iops = 432.1;
  record.mbps = 1.77;
  record.iops_per_watt = 5.32;
  const auto decoded = decode_record(encode_record(record));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->device, record.device);
  EXPECT_NEAR(decoded->avg_watts, record.avg_watts, 1e-6);
  EXPECT_NEAR(decoded->iops, record.iops, 1e-4);
  EXPECT_NEAR(decoded->iops_per_watt, record.iops_per_watt, 1e-6);
}

TEST_F(RemoteTest, ServiceHandlesConfigureThenStart) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  WorkloadGeneratorService service(host);

  net::Message configure = encode_mode(mode());
  configure.sequence = 1;
  EXPECT_EQ(service.handle(configure).type, net::MessageType::kAck);

  net::Message start;
  start.type = net::MessageType::kStartTest;
  start.sequence = 2;
  const net::Message reply = service.handle(start);
  EXPECT_EQ(reply.type, net::MessageType::kPerfResult);
  const auto record = decode_record(reply);
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->iops, 0.0);
}

TEST_F(RemoteTest, StartWithoutConfigureIsError) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  WorkloadGeneratorService service(host);
  net::Message start;
  start.type = net::MessageType::kStartTest;
  start.sequence = 1;
  EXPECT_EQ(service.handle(start).type, net::MessageType::kError);
}

TEST_F(RemoteTest, ThrowingTestBecomesErrorReplyAndServiceSurvives) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  WorkloadGeneratorService service(host);

  // 4 % load is below the proportional filter's resolution floor, so the
  // test throws; the service must answer with an ERROR frame, not unwind.
  net::Message configure = encode_mode(mode(0.04));
  configure.sequence = 1;
  EXPECT_EQ(service.handle(configure).type, net::MessageType::kAck);
  net::Message start;
  start.type = net::MessageType::kStartTest;
  start.sequence = 2;
  const net::Message error = service.handle(start);
  EXPECT_EQ(error.type, net::MessageType::kError);
  ASSERT_TRUE(error.get("reason").has_value());
  EXPECT_NE(error.get("reason")->find("resolution floor"), std::string::npos);

  // The host is still healthy: the next valid test runs normally.
  net::Message reconfigure = encode_mode(mode(0.5));
  reconfigure.sequence = 3;
  EXPECT_EQ(service.handle(reconfigure).type, net::MessageType::kAck);
  start.sequence = 4;
  EXPECT_EQ(service.handle(start).type, net::MessageType::kPerfResult);
}

TEST_F(RemoteTest, FullClientServerExchangeOverChannel) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  auto [client_end, server_end] = net::make_channel();
  net::Communicator client(std::move(client_end));
  net::Communicator server(std::move(server_end));

  WorkloadGeneratorService service(host);
  std::thread server_thread([&service, &server] { service.serve(server); });

  RemoteWorkloadClient remote(client);
  EXPECT_TRUE(remote.configure(mode(0.5)));
  const auto record = remote.start(60.0);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->device, "raid5-hdd6");
  EXPECT_GT(record->iops, 0.0);
  EXPECT_DOUBLE_EQ(record->load_proportion, 0.5);
  remote.stop();
  server_thread.join();
  EXPECT_EQ(host.database().size(), 1u);
}

TEST_F(RemoteTest, ServiceStopsOnPeerHangup) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  auto [client_end, server_end] = net::make_channel();
  net::Communicator server(std::move(server_end));
  WorkloadGeneratorService service(host);
  std::thread server_thread([&service, &server] { service.serve(server); });
  client_end.close();
  server_thread.join();  // must return promptly, not hang
  SUCCEED();
}

}  // namespace
}  // namespace tracer::core
