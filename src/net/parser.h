// Parser module (§III-A1): "a middle layer sitting between GUI and the
// messenger module" translating the GUI's textual command protocol into
// wire Messages and back, keeping the two protocols consistent.
//
// GUI line protocol:  COMMAND key=value key=value ...
// e.g.                CONFIGURE_TEST rs=4K rnd=50 rd=0 load=30
//
// Values containing whitespace, quotes, backslashes, or control characters
// (every ERROR reason, device names with spaces) are double-quoted with
// C-style escapes (\" \\ \n \t \r): ERROR reason="no test configured".
// Space-free values stay unquoted, so the wire format is unchanged for the
// common case and legacy lines parse identically.
#pragma once

#include <string>

#include "net/message.h"

namespace tracer::net {

class Parser {
 public:
  /// GUI text line -> Message. Throws std::runtime_error on junk commands
  /// or malformed key=value pairs (the GUI must hear about typos).
  static Message parse_command(const std::string& line);

  /// Message -> GUI text line (inverse of parse_command; field order is
  /// alphabetical so round-trips are canonical).
  static std::string format_message(const Message& message);
};

}  // namespace tracer::net
