// Distributed deployment adapters (Fig 1 / Fig 3): the workload-generator
// host as a message-driven service, and the evaluation-host side client
// that drives it over a net::Channel. The same frames would flow over TCP
// between machines; here each service runs on its own thread.
#pragma once

#include <atomic>
#include <optional>

#include "core/evaluation_host.h"
#include "net/communicator.h"

namespace tracer::core {

/// Server side: wraps an EvaluationHost and serves CONFIGURE_TEST /
/// START_TEST / STOP_TEST commands.
class WorkloadGeneratorService {
 public:
  explicit WorkloadGeneratorService(EvaluationHost& host) : host_(host) {}

  /// Serve until STOP_TEST or peer hang-up. Run this on the service thread.
  void serve(net::Communicator& comm);

  /// Handle one command synchronously (exposed for tests).
  net::Message handle(const net::Message& command);

 private:
  EvaluationHost& host_;
  std::optional<workload::WorkloadMode> configured_;
};

/// Client side: the evaluation host's view of a remote workload generator.
class RemoteWorkloadClient {
 public:
  explicit RemoteWorkloadClient(net::Communicator& comm) : comm_(comm) {}

  /// CONFIGURE_TEST with the mode vector; true on ACK.
  bool configure(const workload::WorkloadMode& mode, Seconds timeout = 30.0);

  /// START_TEST; returns the PERF_RESULT-decoded record on success.
  std::optional<db::TestRecord> start(Seconds timeout = 300.0);

  /// STOP_TEST (shuts the service loop down).
  void stop();

 private:
  net::Communicator& comm_;
};

/// Field-level encoding shared by both sides (also used by tests).
net::Message encode_mode(const workload::WorkloadMode& mode);
std::optional<workload::WorkloadMode> decode_mode(const net::Message& message);
net::Message encode_record(const db::TestRecord& record);
std::optional<db::TestRecord> decode_record(const net::Message& message);

}  // namespace tracer::core
