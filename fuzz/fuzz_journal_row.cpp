// Fuzz target: the journal row parser (CampaignJournal::parse_record_line)
// is the gate between on-disk bytes and campaign resume. It must never
// crash or throw on arbitrary input — corrupt rows are skipped, not fatal
// — and every row it accepts must survive an encode_line / re-parse round
// trip with bit-equal fields, because resume correctness depends on a
// loaded record matching the one that was measured.
//
// Built as a libFuzzer binary under Clang (-fsanitize=fuzzer,address) and
// as a corpus-replay binary everywhere else (fuzz/standalone_driver.cpp).

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "db/journal.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  tracer::db::TestRecord record;
  if (!tracer::db::CampaignJournal::parse_record_line(line, record)) return 0;

  std::string reencoded;
  try {
    reencoded = tracer::db::CampaignJournal::encode_line(record);
  } catch (const std::invalid_argument&) {
    // Documented asymmetry: a CSV-quoted field may smuggle a newline past
    // the parser, but append() refuses to write such a record. Accepting
    // on read while refusing on write is containment, not a bug.
    return 0;
  }
  tracer::db::TestRecord again;
  if (!tracer::db::CampaignJournal::parse_record_line(reencoded, again) ||
      !(again == record)) {
    std::abort();
  }
  return 0;
}
