// Pass fixture for tracer-unchecked-narrowing-in-codec: explicit
// static_casts beside range checks, widening conversions, and in-range
// constants are all legal. Must be silent.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

std::uint32_t encode_field_count(const std::vector<std::string>& fields) {
  if (fields.size() > 0xFFFFFFFFu) {
    throw std::length_error("field count exceeds wire u32");
  }
  std::uint32_t count = static_cast<std::uint32_t>(fields.size());
  return count;
}

std::uint64_t decode_header(std::uint32_t wire_field) {
  std::uint64_t widened = wire_field;  // widening is always exact
  std::uint8_t version = 2;            // in-range constant
  return widened + version;
}
