#!/usr/bin/env bash
# One-command local reproduction of the CI clang-tidy gate
# (docs/STATIC_ANALYSIS.md). Needs clang-tidy and (ideally)
# run-clang-tidy on PATH; CI installs them via apt.
#
#   scripts/run_clang_tidy.sh            # whole tree
#   scripts/run_clang_tidy.sh src/core   # one subtree
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tidy
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH (apt install clang-tidy)" >&2
  exit 1
fi

# A dedicated compile database keeps tidy runs independent of the main
# build tree's compiler/flags.
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

SCOPE="${1:-src}"
mapfile -t FILES < <(find "${SCOPE}" -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "error: no .cpp files under '${SCOPE}'" >&2
  exit 1
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "${FILES[@]}"
else
  clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
fi
echo "clang-tidy: clean (${#FILES[@]} files)"
