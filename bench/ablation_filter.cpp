// Ablation: uniform vs random bunch selection. §IV-A argues that "random
// filtering bunches can possibly lead to distorted features of replayed
// traces due to many wave crests and troughs of workloads". This bench
// quantifies that: filter the bursty web trace both ways at each load
// level and compare (a) the per-interval shape correlation with the full
// trace and (b) the per-interval intensity deviation from the ideal scaled
// series.
#include "bench_common.h"

#include "core/proportional_filter.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "workload/web_server_model.h"

#include <cmath>

namespace {

// Per-interval package-count series of a trace (pure trace-domain measure;
// no replay needed to judge filter fidelity).
std::vector<double> interval_series(const tracer::trace::Trace& trace,
                                    double interval) {
  tracer::util::TimeBinnedSeries series(interval);
  for (const auto& bunch : trace.bunches) {
    series.add(bunch.timestamp, static_cast<double>(bunch.packages.size()));
  }
  return series.sums();
}

double rms_relative_deviation(const std::vector<double>& measured,
                              const std::vector<double>& ideal) {
  double sum = 0.0;
  std::size_t n = std::min(measured.size(), ideal.size());
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ideal[i] <= 0.0) continue;
    const double rel = (measured[i] - ideal[i]) / ideal[i];
    sum += rel * rel;
    ++used;
  }
  return used ? std::sqrt(sum / static_cast<double>(used)) : 0.0;
}

}  // namespace

int main() {
  using namespace tracer;
  bench::print_header(
      "Ablation — uniform (paper) vs random bunch filtering",
      "random selection distorts the workload's crests and troughs");

  workload::WebServerParams params;
  workload::WebServerModel model(params);
  const trace::Trace web = model.generate();
  const double interval = 10.0;  // fine-grained: where distortion shows
  const std::vector<double> full = interval_series(web, interval);

  util::Table table({"load %", "uniform RMS dev %", "random RMS dev %",
                     "uniform corr", "random corr"});
  double uniform_worst = 0.0;
  double random_worst = 0.0;
  for (double load : {0.1, 0.2, 0.3, 0.5, 0.7}) {
    const trace::Trace uniform = core::ProportionalFilter::apply(web, load);
    const trace::Trace random =
        core::ProportionalFilter::apply_random(web, load, /*seed=*/1234);

    std::vector<double> ideal(full.size());
    for (std::size_t i = 0; i < full.size(); ++i) ideal[i] = full[i] * load;

    auto u_series = interval_series(uniform, interval);
    auto r_series = interval_series(random, interval);
    u_series.resize(full.size());
    r_series.resize(full.size());

    const double u_dev = rms_relative_deviation(u_series, ideal);
    const double r_dev = rms_relative_deviation(r_series, ideal);
    const double u_corr = util::pearson_correlation(u_series, full);
    const double r_corr = util::pearson_correlation(r_series, full);
    uniform_worst = std::max(uniform_worst, u_dev);
    random_worst = std::max(random_worst, r_dev);
    table.row()
        .add(static_cast<int>(load * 100))
        .add(u_dev * 100.0, 2)
        .add(r_dev * 100.0, 2)
        .add(u_corr, 4)
        .add(r_corr, 4)
        .done();
  }
  table.print(std::cout);
  std::printf("worst RMS deviation: uniform %.2f %%, random %.2f %%\n",
              uniform_worst * 100.0, random_worst * 100.0);
  bench::print_verdict(uniform_worst < random_worst,
                       "uniform selection tracks the scaled workload more "
                       "faithfully than random selection");
  return 0;
}
