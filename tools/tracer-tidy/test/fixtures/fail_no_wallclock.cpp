// Fail fixture for tracer-no-wallclock: every marked line must produce a
// diagnostic. `expect:` markers are parsed by the fixture runner
// (tests/test_tracer_tidy_fixtures.cpp); `expect-lint-only:` lines are
// enforced only by scripts/tracer_lint.py (clang-tidy suppresses the
// diagnostic via NOLINT but cannot check for a justification).
#include <chrono>
#include <ctime>

#include <sys/time.h>

double lease_deadline_seconds() {
  auto now = std::chrono::system_clock::now();  // expect: tracer-no-wallclock
  const std::time_t stamp = std::time(nullptr);  // expect: tracer-no-wallclock
  struct timeval tv {};
  gettimeofday(&tv, nullptr);  // expect: tracer-no-wallclock
  return std::chrono::duration<double>(now.time_since_epoch()).count() +
         static_cast<double>(stamp) + static_cast<double>(tv.tv_sec);
}

std::chrono::system_clock::time_point next_heartbeat() {  // expect: tracer-no-wallclock
  // A NOLINT without a justification is itself a violation of the NOLINT
  // policy (docs/STATIC_ANALYSIS.md) — the fallback linter flags it.
  return std::chrono::system_clock::now();  // NOLINT(tracer-no-wallclock)  expect-lint-only: tracer-nolint-justification
}
