// Large-trace streaming smoke test (CI: large-trace-smoke job).
//
// Proves the bounded-memory claim end to end, at a scale that would embarrass
// a materializing pipeline:
//   1. synthesize a ~1M-bunch v1 trace, streamed bunch-by-bunch to disk
//      (BlkStreamWriter — the trace is never resident),
//   2. convert it v1 -> v2 with bounded memory (convert_blk_to_columnar),
//   3. replay the v2 file through the shared TraceSource loop with a small
//      decode window and consumed-page eviction,
// and asserts that the process's resident-set growth over the whole run is
// at least `--rss-factor` (default 10) times smaller than what the
// materialized trace would occupy.
//
// Memory is measured as the VmHWM (peak RSS) delta from /proc/self/status.
// Under ASan/UBSan the resident set is inflated by interception machinery
// (shadow pages, redzones, quarantine) rather than by the pipeline, so
// when the sanitizer allocator is linked in the ceiling is asserted on
// peak *heap-allocated bytes* (__sanitizer_get_current_allocated_bytes,
// sampled at every replay cycle) — the same bounded-memory claim, through
// the observable the sanitizer leaves intact. A hard ulimit -v would
// break ASan's shadow reservation, so the ceiling is asserted in-process
// either way. Exit code 0 = all assertions held.
//
//   stream_smoke [--bunches=N] [--packages=P] [--window=W]
//                [--rss-factor=F] [--dir=PATH] [--metrics-out=FILE]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/replay_engine.h"
#include "obs/registry.h"
#include "storage/disk_array.h"
#include "trace/blk_format.h"
#include "trace/columnar_format.h"
#include "util/rng.h"

// Present when a sanitizer runtime is linked in; null otherwise.
extern "C" std::size_t __sanitizer_get_current_allocated_bytes()
    __attribute__((weak));

namespace {

using namespace tracer;

bool sanitizer_heap_available() {
  return &__sanitizer_get_current_allocated_bytes != nullptr;
}

std::uint64_t heap_bytes() {
  return sanitizer_heap_available()
             ? __sanitizer_get_current_allocated_bytes()
             : 0;
}

/// Peak resident set (VmHWM) in bytes from /proc/self/status; 0 when the
/// field is unavailable (non-Linux), which disables the ceiling assertion.
std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

std::uint64_t flag_u64(int argc, char** argv, const char* name,
                       std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name,
                     const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t bunches = flag_u64(argc, argv, "bunches", 1000000);
  const std::uint64_t packages = flag_u64(argc, argv, "packages", 4);
  const std::uint64_t window = flag_u64(argc, argv, "window", 4096);
  const std::uint64_t rss_factor = flag_u64(argc, argv, "rss-factor", 10);
  const std::string dir = flag_str(
      argc, argv, "dir", std::filesystem::temp_directory_path().string());
  const std::string metrics_out = flag_str(argc, argv, "metrics-out", "");

  const std::string v1_path = dir + "/stream_smoke.replay";
  const std::string v2_path = dir + "/stream_smoke.replay2";
  const std::uint64_t baseline_rss = peak_rss_bytes();
  const std::uint64_t baseline_heap = heap_bytes();
  std::uint64_t peak_heap = baseline_heap;
  const auto sample_heap = [&peak_heap] {
    peak_heap = std::max(peak_heap, heap_bytes());
  };

  try {
    // Phase 1: stream-synthesize the v1 trace. 2000 bunches/s keeps the
    // SSD array ahead of submission, so in-flight state stays bounded.
    const double spacing = 0.5e-3;
    {
      util::Rng rng(42);
      std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
      trace::BlkStreamWriter writer(out, "stream-smoke", bunches);
      std::vector<trace::IoPackage> bunch_packages(packages);
      for (std::uint64_t b = 0; b < bunches; ++b) {
        for (auto& pkg : bunch_packages) {
          pkg.sector = rng.below(1ULL << 30) * 8;
          pkg.bytes = 4096;
          pkg.op = rng.chance(0.6) ? OpType::kRead : OpType::kWrite;
        }
        writer.add(static_cast<double>(b) * spacing, bunch_packages);
      }
      writer.finish();
    }
    sample_heap();
    std::printf("synthesized %llu bunches -> %s (%.1f MB)\n",
                static_cast<unsigned long long>(bunches), v1_path.c_str(),
                static_cast<double>(std::filesystem::file_size(v1_path)) /
                    1e6);

    // Phase 2: bounded-memory v1 -> v2 conversion.
    const std::uint64_t converted =
        trace::convert_blk_to_columnar(v1_path, v2_path);
    if (converted != bunches) {
      std::fprintf(stderr, "FAIL: converted %llu of %llu bunches\n",
                   static_cast<unsigned long long>(converted),
                   static_cast<unsigned long long>(bunches));
      return 1;
    }
    sample_heap();
    std::printf("converted to v2 -> %s (%.1f MB)\n", v2_path.c_str(),
                static_cast<double>(std::filesystem::file_size(v2_path)) /
                    1e6);

    // Phase 3: streamed replay through the shared TraceSource loop.
    trace::ColumnarSource::Options options;
    options.window_bunches = static_cast<std::size_t>(window);
    options.evict_consumed = true;
    auto source = trace::open_columnar_source(v2_path, options);
    core::ReplayOptions replay_options;
    replay_options.on_cycle = [&sample_heap](const core::CycleSnapshot&) {
      sample_heap();
    };
    core::ReplayEngine engine(replay_options);
    storage::DiskArray array(engine.simulator(),
                             storage::ArrayConfig::ssd_testbed(4));
    const auto report = engine.replay(*source, array);
    std::printf(
        "replayed %llu bunches / %llu packages: %.0f IOPS, %.1f MBPS, "
        "%.2f W\n",
        static_cast<unsigned long long>(report.bunches_replayed),
        static_cast<unsigned long long>(report.packages_replayed),
        report.perf.iops, report.perf.mbps, report.avg_watts);
    if (report.bunches_replayed != bunches) {
      std::fprintf(stderr, "FAIL: replayed %llu of %llu bunches\n",
                   static_cast<unsigned long long>(report.bunches_replayed),
                   static_cast<unsigned long long>(bunches));
      return 1;
    }

    sample_heap();

    // The ceiling: materialized size = what Trace would hold in RAM.
    const std::uint64_t materialized =
        bunches * sizeof(trace::Bunch) +
        bunches * packages * sizeof(trace::IoPackage);
    const bool use_heap = sanitizer_heap_available();
    const std::uint64_t peak = peak_rss_bytes();
    const std::uint64_t rss_growth =
        peak > baseline_rss ? peak - baseline_rss : 0;
    const std::uint64_t growth =
        use_heap ? peak_heap - baseline_heap : rss_growth;
    const char* metric = use_heap ? "peak-heap" : "RSS";
    std::printf(
        "materialized size %.1f MB, %s growth %.1f MB "
        "(RSS growth %.1f MB, baseline %.1f MB)\n",
        static_cast<double>(materialized) / 1e6, metric,
        static_cast<double>(growth) / 1e6,
        static_cast<double>(rss_growth) / 1e6,
        static_cast<double>(baseline_rss) / 1e6);
    if (!use_heap && peak == 0) {
      std::printf("VmHWM unavailable; skipping the memory ceiling assertion\n");
    } else if (growth * rss_factor > materialized) {
      std::fprintf(stderr,
                   "FAIL: %s growth %.1f MB exceeds materialized/%llu = "
                   "%.1f MB\n",
                   metric, static_cast<double>(growth) / 1e6,
                   static_cast<unsigned long long>(rss_factor),
                   static_cast<double>(materialized) /
                       static_cast<double>(rss_factor) / 1e6);
      return 1;
    } else {
      std::printf("memory ceiling held: %s growth x%llu <= materialized\n",
                  metric, static_cast<unsigned long long>(rss_factor));
    }

    if (!metrics_out.empty()) {
      obs::Registry::global().snapshot().write_json(metrics_out);
      std::printf("obs snapshot -> %s\n", metrics_out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    std::filesystem::remove(v1_path);
    std::filesystem::remove(v2_path);
    return 1;
  }
  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
  std::printf("stream smoke OK\n");
  return 0;
}
