// Discrete-event simulation kernel.
//
// Single-threaded per instance: parameter sweeps run many independent
// Simulators in parallel via util::ThreadPool rather than sharing one
// (see DESIGN.md §6). Events at equal timestamps fire in scheduling order
// (FIFO tie-break via a monotone sequence number) so runs are deterministic.
//
// The event queue is a flat binary heap over a std::vector of 24-byte
// trivially-copyable entries (time, seq, slot) — reservable, cache-friendly,
// movable pop, no const_cast move-from-top(). The event callables live in a
// side slab indexed by slot and recycled through a free list, so heap sifts
// never move a closure, and the callable itself is a small-buffer
// util::SmallFunction: scheduling an event whose closure fits the inline
// buffer performs no heap allocation in steady state. All of the replay
// engine's and device models' event kinds fit (replay_engine.cpp
// static_asserts its own); only oversized closures fall back to the heap.
#pragma once

#include <cstdint>
#include <vector>

#include "util/small_function.h"
#include "util/types.h"

namespace tracer::sim {

class Simulator {
 public:
  /// Inline capacity 112 bytes: the largest hot-path closure (the SSD
  /// model's completion, ~96 bytes) fits with headroom.
  using Action = util::SmallFunction<void(), 112>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  Seconds now() const { return now_; }

  /// Schedule `action` at absolute time `at` (clamped to now()).
  void schedule_at(Seconds at, Action action);

  /// Schedule `action` `delay` seconds from now (negative clamps to 0).
  void schedule_in(Seconds delay, Action action);

  /// Pre-size the event heap and callable slab (e.g. before a replay with
  /// a known queue depth) so steady-state scheduling never reallocates.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

  /// Number of events not yet fired.
  std::size_t pending() const { return heap_.size(); }

  /// Current allocation sizes of the event heap and callable slab. Replay
  /// regression tests assert these are stable across a replay after
  /// reserve() — growth means the in-flight estimate undershot and the hot
  /// loop paid a reallocation.
  std::size_t heap_capacity() const { return heap_.capacity(); }
  std::size_t slot_capacity() const { return slots_.capacity(); }

  /// Run until the event queue drains. Returns the final clock value.
  Seconds run();

  /// Fire every event with time <= t_end, then advance the clock to t_end
  /// (events scheduled beyond t_end stay queued). Returns the new clock.
  Seconds run_until(Seconds t_end);

  /// Fire at most one event. Returns false when the queue is empty.
  bool step();

  /// Drop all pending events (used between test phases).
  void clear();

  /// Total events dispatched over the simulator's lifetime.
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// How many schedule_at calls asked for a time already in the past and
  /// were clamped to now(). A persistently growing count during replay
  /// means the replayer is saturated and silently drifting from the
  /// trace's timing — accuracy benches should check this stays 0.
  std::uint64_t late_schedule_count() const { return late_schedules_; }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index of the callable in slots_
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t late_schedules_ = 0;
  std::vector<Event> heap_;  ///< binary min-time heap (Later comparator)
  std::vector<Action> slots_;  ///< event callables, addressed by Event::slot
  std::vector<std::uint32_t> free_slots_;  ///< recycled slots_ indices
};

}  // namespace tracer::sim
