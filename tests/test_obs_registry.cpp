// obs::Registry / Counter / Gauge / LogHistogram / Snapshot unit tests.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

namespace tracer::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndUpdateMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST(Registry, HandleIsStableAndShared) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct kinds may share a name without clashing.
  Gauge& g = reg.gauge("x.count");
  g.set(1.0);
  EXPECT_EQ(a.value(), 3u);
}

TEST(Registry, ConcurrentLookupAndBumpIsConsistent) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread looks the instruments up itself — exercising the
      // registry lock — then hammers the shared atomics.
      Counter& c = reg.counter("conc.count");
      LogHistogram& h = reg.histogram("conc.hist", 0.01, 1000.0);
      Gauge& g = reg.gauge("conc.max");
      for (int i = 0; i < kIters; ++i) {
        c.increment();
        h.add(static_cast<double>(i % 100) + 0.5);
        g.update_max(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("conc.count").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("conc.hist").total(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(reg.gauge("conc.max").value(), kIters - 1);
}

TEST(LogHistogram, BinEdgesAreGeometric) {
  LogHistogram h(0.01, 10000.0, 40);
  // 6 decades x 40 bins.
  EXPECT_EQ(h.bin_count(), 240u);
  const double ratio = h.bin_hi(0) / h.bin_lo(0);
  for (std::size_t i = 1; i < h.bin_count(); i += 37) {
    EXPECT_NEAR(h.bin_hi(i) / h.bin_lo(i), ratio, 1e-9);
  }
  EXPECT_NEAR(h.bin_lo(0), 0.01, 1e-12);
  EXPECT_NEAR(h.bin_hi(h.bin_count() - 1), 10000.0, 1e-6);
}

TEST(LogHistogram, ClampsOutOfRangeIntoEdgeBins) {
  LogHistogram h(1.0, 100.0, 10);
  h.add(0.5);     // below lo
  h.add(-3.0);    // non-positive
  h.add(1000.0);  // above hi
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(h.bin_count() - 1), 1u);
}

TEST(LogHistogram, PercentileTracksExactWithinOneBinRatio) {
  LogHistogram h(0.01, 10000.0, 40);
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(1.0, 1.2);
  std::vector<double> exact;
  exact.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist(rng);
    exact.push_back(x);
    h.add(x);
  }
  std::sort(exact.begin(), exact.end());
  // One-bin relative resolution: 10^(1/40) ~= 1.059.
  const double tolerance = std::pow(10.0, 1.0 / 40.0);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double expected =
        exact[static_cast<std::size_t>(q * (exact.size() - 1))];
    const double got = h.percentile(q);
    EXPECT_LE(got / expected, tolerance * 1.02) << "q=" << q;
    EXPECT_GE(got / expected, 1.0 / (tolerance * 1.02)) << "q=" << q;
  }
}

TEST(LogHistogram, RejectsBadRange) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(Snapshot, ReflectsValuesAndLookupByName) {
  Registry reg;
  reg.counter("a.count").add(5);
  reg.gauge("b.level").set(2.5);
  LogHistogram& h = reg.histogram("c.lat", 0.1, 100.0);
  for (int i = 0; i < 100; ++i) h.add(10.0);

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("a.count"), 5u);
  EXPECT_EQ(snap.counter_or("missing", 77), 77u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("b.level"), 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "c.lat");
  EXPECT_EQ(snap.histograms[0].count, 100u);
  EXPECT_NEAR(snap.histograms[0].p50, 10.0, 10.0 * 0.07);

  // Snapshot is a copy: later bumps don't mutate it.
  reg.counter("a.count").add(100);
  EXPECT_EQ(snap.counter_or("a.count"), 5u);
}

TEST(Snapshot, JsonAndCsvExportContainEveryInstrument) {
  Registry reg;
  reg.counter("n.sent").add(3);
  reg.gauge("n.depth").set(4.0);
  reg.histogram("n.lat", 0.1, 10.0).add(1.0);

  const Snapshot snap = reg.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"n.sent\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"n.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"n.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("counter,n.sent,3"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,n.depth,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,n.lat.count,1"), std::string::npos);
}

TEST(Registry, ResetValuesZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("r.count");
  c.add(9);
  reg.gauge("r.level").set(1.0);
  reg.histogram("r.lat", 0.1, 10.0).add(1.0);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_DOUBLE_EQ(reg.gauge("r.level").value(), 0.0);
  EXPECT_EQ(reg.histogram("r.lat").total(), 0u);
}

TEST(ScopedTimer, AccumulatesDurationAndCalls) {
  Counter micros;
  Counter calls;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer timer(micros, calls);
    // Busy-wait a hair so the duration is visibly non-negative; zero is
    // still legal on a coarse clock.
  }
  EXPECT_EQ(calls.value(), 3u);
  EXPECT_GE(micros.value(), 0u);
}

TEST(Registry, GlobalIsSameInstance) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
  Counter& c = Registry::global().counter("test.obs.global_probe");
  c.increment();
  EXPECT_GE(Registry::global()
                .snapshot()
                .counter_or("test.obs.global_probe"),
            1u);
}

}  // namespace
}  // namespace tracer::obs
