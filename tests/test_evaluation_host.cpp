#include "core/evaluation_host.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "obs/registry.h"
#include "util/cancel_token.h"
#include "util/thread_pool.h"
#include "workload/cello_model.h"

namespace tracer::core {
namespace {

class EvaluationHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tracer_eval_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    options_.collection_duration = 1.0;
    options_.threads = 2;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  workload::WorkloadMode mode(double load = 1.0) {
    workload::WorkloadMode m;
    m.request_size = 16 * kKiB;
    m.random_ratio = 0.5;
    m.read_ratio = 0.5;
    m.load_proportion = load;
    return m;
  }

  std::filesystem::path dir_;
  EvaluationOptions options_;
};

TEST_F(EvaluationHostTest, PeakTraceCollectedOnceAndCached) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  const trace::Trace first = host.peak_trace(mode());
  EXPECT_GT(first.bunch_count(), 0u);
  EXPECT_TRUE(host.repository().contains(
      mode().trace_key(host.array_config().name)));
  const trace::Trace second = host.peak_trace(mode());
  EXPECT_EQ(first, second);  // loaded from the repository, not regenerated
}

TEST_F(EvaluationHostTest, RunTestFillsFullDatabaseRecord) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  const TestResult result = host.run_test(mode(0.5));
  const db::TestRecord& r = result.record;
  EXPECT_GT(r.test_id, 0u);
  EXPECT_FALSE(r.timestamp.empty());
  EXPECT_EQ(r.device, "raid5-hdd6");
  EXPECT_FALSE(r.trace_name.empty());
  EXPECT_EQ(r.request_size, 16 * kKiB);
  EXPECT_DOUBLE_EQ(r.load_proportion, 0.5);
  EXPECT_GT(r.iops, 0.0);
  EXPECT_GT(r.mbps, 0.0);
  EXPECT_GT(r.avg_response_ms, 0.0);
  EXPECT_GT(r.avg_watts, 70.0);  // idle is 78 W
  EXPECT_GT(r.avg_volts, 200.0);
  EXPECT_GT(r.avg_amps, 0.0);
  EXPECT_GT(r.joules, 0.0);
  EXPECT_GT(r.iops_per_watt, 0.0);
  EXPECT_GT(r.mbps_per_kilowatt, 0.0);
  EXPECT_EQ(host.database().size(), 1u);
}

TEST_F(EvaluationHostTest, LoadProportionScalesRecordedThroughput) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  const TestResult full = host.run_test(mode(1.0));
  const TestResult fifth = host.run_test(mode(0.2));
  EXPECT_NEAR(fifth.record.iops / full.record.iops, 0.2, 0.08);
}

TEST_F(EvaluationHostTest, RunTraceLabelsExternalWorkloads) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  workload::CelloParams params;
  params.duration = 5.0;
  workload::CelloModel cello(params);
  const TestResult result = host.run_trace(cello.generate(), "cello99", 0.5);
  EXPECT_EQ(result.record.trace_name, "cello99");
  EXPECT_DOUBLE_EQ(result.record.load_proportion, 0.5);
  EXPECT_NEAR(result.record.read_ratio, 0.58, 0.05);
  EXPECT_GT(result.record.iops, 0.0);
}

TEST_F(EvaluationHostTest, SweepRunsAllModesInParallel) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  std::vector<workload::WorkloadMode> modes;
  for (double load : {0.2, 0.4, 0.6, 0.8}) modes.push_back(mode(load));
  const auto outcomes = host.run_sweep(modes);
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_DOUBLE_EQ(outcomes[i].result->record.load_proportion,
                     modes[i].load_proportion);
    EXPECT_GT(outcomes[i].result->record.iops, 0.0);
  }
  // Throughput ordered by load.
  EXPECT_LT(outcomes[0].result->record.iops,
            outcomes[3].result->record.iops);
  EXPECT_EQ(host.database().size(), 4u);
}

TEST_F(EvaluationHostTest, SweepIsolatesFailingTest) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  // Load 0.04 is below the proportional filter's resolution floor, so that
  // one test throws; the other slots must still complete.
  std::vector<workload::WorkloadMode> modes = {mode(0.5), mode(0.04),
                                               mode(1.0)};
  const auto outcomes = host.run_sweep(modes);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_NE(outcomes[1].error.find("resolution floor"), std::string::npos)
      << outcomes[1].error;
  EXPECT_TRUE(outcomes[2].ok()) << outcomes[2].error;
  EXPECT_EQ(host.database().size(), 2u);
}

TEST_F(EvaluationHostTest, SweepHonoursCancellation) {
  options_.threads = 1;
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  std::vector<workload::WorkloadMode> modes;
  for (double load : {0.2, 0.4, 0.6, 0.8}) modes.push_back(mode(load));
  util::CancelToken cancel;
  cancel.request_cancel();  // cancelled before the sweep starts
  const auto outcomes = host.run_sweep(modes, &cancel);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error, "cancelled");
  }
  EXPECT_EQ(host.database().size(), 0u);
}

TEST_F(EvaluationHostTest, PeakTraceSharedReturnsSamePointerAcrossLoadLevels) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  const auto first = host.peak_trace_shared(mode(1.0));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(host.peak_build_count(), 1u);
  // Load proportion is not part of the trace key: every level of the same
  // workload mode shares the one cached instance.
  for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_EQ(host.peak_trace_shared(mode(load)).get(), first.get());
  }
  EXPECT_EQ(host.peak_build_count(), 1u);
  EXPECT_EQ(host.peak_cache_size(), 1u);
}

TEST_F(EvaluationHostTest, PeakCacheBuildsOnceUnderConcurrentAccess) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  constexpr std::size_t kCallers = 16;
  std::vector<std::shared_ptr<const trace::Trace>> seen(kCallers);
  util::ThreadPool pool(4);
  pool.parallel_for(kCallers, [&](std::size_t i) {
    seen[i] = host.peak_trace_shared(mode(0.1 * static_cast<double>(i + 1)));
  });
  std::set<const trace::Trace*> distinct;
  for (const auto& ptr : seen) {
    ASSERT_NE(ptr, nullptr);
    distinct.insert(ptr.get());
  }
  EXPECT_EQ(distinct.size(), 1u);
  EXPECT_EQ(host.peak_build_count(), 1u);
}

TEST_F(EvaluationHostTest, SweepOverLoadLevelsBuildsPeakTraceExactlyOnce) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  std::vector<workload::WorkloadMode> modes;
  for (int level = 1; level <= 10; ++level) modes.push_back(mode(level / 10.0));
  const auto outcomes = host.run_sweep(modes);
  ASSERT_EQ(outcomes.size(), 10u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
  }
  // The acceptance criterion: 10 load levels of one mode parse/generate
  // the peak trace exactly once.
  EXPECT_EQ(host.peak_build_count(), 1u);
  EXPECT_EQ(host.database().size(), 10u);
}

TEST_F(EvaluationHostTest, ClearPeakCacheKeepsSharedTracesAlive) {
  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  const auto held = host.peak_trace_shared(mode());
  host.clear_peak_cache();
  EXPECT_EQ(host.peak_cache_size(), 0u);
  EXPECT_GT(held->bunch_count(), 0u);  // shared ownership keeps it valid
  // Next fetch rebuilds (from the repository this time, not a re-collect).
  const auto rebuilt = host.peak_trace_shared(mode());
  EXPECT_EQ(host.peak_build_count(), 2u);
  EXPECT_EQ(*rebuilt, *held);
}

TEST_F(EvaluationHostTest, RepositoryPersistsAcrossHosts) {
  {
    EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_,
                        options_);
    host.peak_trace(mode());
  }
  EvaluationHost second(storage::ArrayConfig::hdd_testbed(6), dir_,
                        options_);
  EXPECT_TRUE(second.repository().contains(
      mode().trace_key(second.array_config().name)));
}

TEST_F(EvaluationHostTest, SweepPopulatesObservabilityCounters) {
  // The registry is process-global and other tests bump it too, so assert
  // on deltas across this sweep, not absolutes.
  const obs::Snapshot before = obs::Registry::global().snapshot();

  EvaluationHost host(storage::ArrayConfig::hdd_testbed(6), dir_, options_);
  std::vector<workload::WorkloadMode> modes;
  for (int level = 1; level <= 10; ++level) {
    modes.push_back(mode(level / 10.0));
  }
  const auto outcomes = host.run_sweep(modes);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error;
  }

  const obs::Snapshot after = obs::Registry::global().snapshot();
  const auto delta = [&](const char* name) {
    return after.counter_or(name) - before.counter_or(name);
  };
  // 10 load levels of one mode: one build/miss, nine (or more) hits.
  EXPECT_EQ(delta("host.peak_cache.misses"), 1u);
  EXPECT_EQ(delta("host.peak_cache.builds"), 1u);
  EXPECT_GE(delta("host.peak_cache.hits"), 9u);
  // Every test replayed a filtered trace through the engine.
  EXPECT_EQ(delta("replay.runs"), 10u);
  EXPECT_GT(delta("replay.events_scheduled"), 0u);
  EXPECT_GT(delta("replay.packages"), 0u);
  // Phase timers saw every test (generate ran once, behind the cache).
  EXPECT_EQ(delta("host.phase.generate.calls"), 1u);
  EXPECT_EQ(delta("host.phase.filter.calls"), 10u);
  EXPECT_EQ(delta("host.phase.replay.calls"), 10u);
  EXPECT_EQ(delta("host.phase.measure.calls"), 10u);
  EXPECT_GT(delta("host.phase.replay.us"), 0u);
  // Power sampling ran during each replay.
  EXPECT_GT(delta("power.samples"), 0u);
  // Queue depth gauge saw at least one in-flight package.
  EXPECT_GE(after.gauge_or("replay.max_in_flight"), 1.0);
}

TEST_F(EvaluationHostTest, SsdArrayWorksEndToEnd) {
  EvaluationHost host(storage::ArrayConfig::ssd_testbed(4), dir_, options_);
  const TestResult result = host.run_test(mode(1.0));
  EXPECT_GT(result.record.avg_watts, 190.0);  // chassis-dominated
  EXPECT_GT(result.record.mbps, 1.0);
}

}  // namespace
}  // namespace tracer::core
