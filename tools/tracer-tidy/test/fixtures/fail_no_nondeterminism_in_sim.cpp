// Fail fixture for tracer-no-nondeterminism-in-sim: entropy and
// address-ordered iteration break the bit-reproducible replay contract
// (classic kernel == sharded kernel, fleet run == clean run).
#include <cstdlib>
#include <random>
#include <unordered_map>

int pick_victim_disk(int disks) {
  return std::rand() % disks;  // expect: tracer-no-nondeterminism-in-sim
}

double jitter_service_time() {
  std::random_device entropy;  // expect: tracer-no-nondeterminism-in-sim
  std::mt19937 engine;  // expect: tracer-no-nondeterminism-in-sim
  engine.seed(entropy());
  return static_cast<double>(engine()) * 1e-9;
}

double total_queue_depth(const std::unordered_map<int, double>& per_disk) {
  double first_seen = -1.0;
  for (const auto& entry : per_disk) {  // expect: tracer-no-nondeterminism-in-sim
    if (first_seen < 0.0) first_seen = entry.second;
  }
  return first_seen;
}
