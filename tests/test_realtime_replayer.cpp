#include "core/realtime_replayer.h"

#include <gtest/gtest.h>

namespace tracer::core {
namespace {

trace::Trace small_trace(std::size_t bunches, Seconds gap) {
  trace::Trace trace;
  trace.device = "rt";
  for (std::size_t b = 0; b < bunches; ++b) {
    trace::Bunch bunch;
    bunch.timestamp = static_cast<double>(b) * gap;
    bunch.packages.push_back(
        trace::IoPackage{b * 8, 4096, OpType::kRead});
    trace.bunches.push_back(std::move(bunch));
  }
  return trace;
}

TEST(RealtimeReplayer, RejectsBadInput) {
  EXPECT_THROW(RealtimeReplayer(0.0), std::invalid_argument);
  RealtimeReplayer replayer(1.0);
  SyntheticRealtimeTarget target(
      [](const storage::IoRequest&) { return 0.0; });
  EXPECT_THROW(replayer.replay(trace::Trace{}, target),
               std::invalid_argument);
}

TEST(RealtimeReplayer, ReplaysAllPackagesAndCountsBytes) {
  RealtimeReplayer replayer(/*speed=*/100.0);
  SyntheticRealtimeTarget target(
      [](const storage::IoRequest&) { return 0.0; });
  const trace::Trace trace = small_trace(50, 0.01);
  const RealtimeReport report = replayer.replay(trace, target);
  EXPECT_EQ(report.packages, 50u);
  EXPECT_EQ(report.bytes, 50u * 4096);
  EXPECT_GT(report.iops, 0.0);
  EXPECT_GT(report.mbps, 0.0);
}

TEST(RealtimeReplayer, SpeedFactorCompressesWallTime) {
  const trace::Trace trace = small_trace(20, 0.02);  // 0.38 s span
  SyntheticRealtimeTarget target(
      [](const storage::IoRequest&) { return 0.0; });
  RealtimeReplayer fast(/*speed=*/20.0);
  const RealtimeReport report = fast.replay(trace, target);
  EXPECT_LT(report.wall_duration, 0.25);
  EXPECT_GE(report.wall_duration, 0.38 / 20.0 * 0.8);
}

TEST(RealtimeReplayer, HonorsInterArrivalPacing) {
  const trace::Trace trace = small_trace(10, 0.02);  // 0.18 s span
  SyntheticRealtimeTarget target(
      [](const storage::IoRequest&) { return 0.0; });
  RealtimeReplayer realtime(1.0);
  const RealtimeReport report = realtime.replay(trace, target);
  EXPECT_GE(report.wall_duration, 0.17);
  EXPECT_LT(report.max_timing_error_ms, 50.0);
}

TEST(RealtimeReplayer, AccountsSyntheticLatency) {
  const trace::Trace trace = small_trace(10, 0.001);
  SyntheticRealtimeTarget target(
      [](const storage::IoRequest&) { return 2e-3; });
  RealtimeReplayer replayer(10.0);
  const RealtimeReport report = replayer.replay(trace, target);
  EXPECT_NEAR(report.avg_latency_ms, 2.0, 0.5);
}

TEST(RealtimeReplayer, LatencyModelSeesRequestFields) {
  const trace::Trace trace = small_trace(5, 0.001);
  std::atomic<int> reads{0};
  SyntheticRealtimeTarget target([&reads](const storage::IoRequest& req) {
    if (req.op == OpType::kRead && req.bytes == 4096) ++reads;
    return 0.0;
  });
  RealtimeReplayer replayer(100.0);
  replayer.replay(trace, target);
  EXPECT_EQ(reads.load(), 5);
}

}  // namespace
}  // namespace tracer::core
