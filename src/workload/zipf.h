// Zipf(s, N) sampler for object popularity in the web-server synthesiser.
//
// Uses the rejection-inversion method of Hörmann & Derflinger ("Rejection-
// inversion to generate variates from monotone discrete distributions"),
// which is O(1) per sample for any N — a popularity table over millions of
// objects would not fit the generator's cache budget.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace tracer::workload {

class ZipfSampler {
 public:
  /// s: skew exponent (> 0, s != 1 handled too); n: number of items >= 1.
  ZipfSampler(double s, std::uint64_t n);

  /// Sample a rank in [1, n]; rank 1 is the most popular item.
  std::uint64_t sample(util::Rng& rng) const;

  double skew() const { return s_; }
  std::uint64_t size() const { return n_; }

 private:
  double h(double x) const;          // H(x): integral of x^-s
  double h_inverse(double x) const;  // H^-1

  double s_;
  std::uint64_t n_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace tracer::workload
