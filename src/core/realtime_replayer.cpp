#include "core/realtime_replayer.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/span.h"

namespace tracer::core {

namespace {
using Clock = std::chrono::steady_clock;

Seconds since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

SyntheticRealtimeTarget::SyntheticRealtimeTarget(
    std::function<Seconds(const storage::IoRequest&)> latency_model)
    : latency_model_(std::move(latency_model)),
      worker_([this] { worker_loop(); }) {}

SyntheticRealtimeTarget::~SyntheticRealtimeTarget() {
  {
    // Store under the mutex: a worker past its predicate check but not yet
    // inside wait() holds the lock, so it cannot miss this notify.
    util::MutexLock lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  worker_.join();
}

void SyntheticRealtimeTarget::submit(const storage::IoRequest& request,
                                     Seconds /*issue_time*/,
                                     std::function<void(Seconds)> done) {
  Job job{latency_model_(request), std::move(done)};
  {
    util::MutexLock lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void SyntheticRealtimeTarget::worker_loop() {
  while (true) {
    Job job;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && jobs_.empty()) {
        cv_.wait(lock);
      }
      // Stopping still drains queued jobs: their `done` callbacks write
      // into a replay() stack frame that is waiting on them.
      if (jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job.latency > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(job.latency));
    }
    job.done(job.latency);
  }
}

RealtimeReplayer::RealtimeReplayer(double speed) : speed_(speed) {
  if (!(speed > 0.0)) {
    throw std::invalid_argument("RealtimeReplayer: speed must be > 0");
  }
}

RealtimeReport RealtimeReplayer::replay(const trace::Trace& trace,
                                        RealtimeTarget& target) {
  return replay(trace::TraceView::borrowed(trace), target);
}

RealtimeReport RealtimeReplayer::replay(const trace::TraceView& view,
                                        RealtimeTarget& target) {
  if (view.empty()) {
    throw std::invalid_argument("RealtimeReplayer: empty trace");
  }
  TRACER_SPAN("realtime.replay");
  std::uint64_t max_outstanding = 0;

  struct Completion {
    Seconds latency;
    Bytes bytes;
  };
  util::SpscQueue<Completion> completions(1 << 16);
  std::atomic<std::uint64_t> outstanding{0};

  RealtimeReport report;
  const Clock::time_point start = Clock::now();
  std::uint64_t next_id = 1;
  double max_skew = 0.0;

  for (std::size_t i = 0; i < view.bunch_count(); ++i) {
    if (cancel_.cancelled()) {
      report.stopped = true;
      break;
    }
    const Seconds scheduled = view.timestamp(i) / speed_;
    // Sleep toward the bunch's deadline in <=10 ms slices so a cancel
    // during a long inter-arrival gap takes effect promptly instead of
    // after the gap. The final slice lands on the deadline, so timing
    // skew for uncancelled replays is unchanged.
    constexpr Seconds kCancelSlice = 10e-3;
    for (Seconds ahead = scheduled - since(start); ahead > 0.0;
         ahead = scheduled - since(start)) {
      if (cancel_.cancelled()) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::min(ahead, kCancelSlice)));
    }
    if (cancel_.cancelled()) {
      report.stopped = true;
      break;
    }
    max_skew = std::max(max_skew, std::abs(since(start) - scheduled));
    for (const auto& pkg : view.packages(i)) {
      storage::IoRequest request;
      request.id = next_id++;
      request.sector = pkg.sector;
      request.bytes = pkg.bytes;
      request.op = pkg.op;
      max_outstanding = std::max(
          max_outstanding, outstanding.fetch_add(1, std::memory_order_relaxed) + 1);
      const Bytes bytes = pkg.bytes;
      target.submit(request, since(start),
                    [&completions, &outstanding, bytes](Seconds latency) {
                      // The SPSC producer is the target's completion thread.
                      while (!completions.try_push(Completion{latency, bytes})) {
                        std::this_thread::yield();
                      }
                      outstanding.fetch_sub(1, std::memory_order_release);
                    });
      ++report.packages;
      report.bytes += pkg.bytes;
    }
    // Drain completions opportunistically to bound queue occupancy.
    while (auto completion = completions.try_pop()) {
      report.avg_latency_ms += completion->latency * 1e3;
    }
  }

  // Wait for stragglers without pegging a core: a few polite yields for
  // the fast path, then bounded exponential sleep (capped at 1 ms so the
  // final completion is never missed by much). Keep draining completions
  // while waiting so the queue cannot wedge full under a large backlog.
  std::size_t spins = 0;
  Seconds backoff = 50e-6;
  while (outstanding.load(std::memory_order_acquire) > 0) {
    while (auto completion = completions.try_pop()) {
      report.avg_latency_ms += completion->latency * 1e3;
    }
    if (outstanding.load(std::memory_order_acquire) == 0) break;
    if (spins < 64) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, 1e-3);
    }
  }
  while (auto completion = completions.try_pop()) {
    report.avg_latency_ms += completion->latency * 1e3;
  }

  report.wall_duration = since(start);
  if (report.packages > 0) {
    report.avg_latency_ms /= static_cast<double>(report.packages);
  }
  if (report.wall_duration > 0.0) {
    report.iops = static_cast<double>(report.packages) / report.wall_duration;
    report.mbps =
        static_cast<double>(report.bytes) / report.wall_duration / 1.0e6;
  }
  report.max_timing_error_ms = max_skew * 1e3;

  // One registry touch per replay, after the issuing loop is done.
  {
    auto& reg = obs::Registry::global();
    static auto& runs = reg.counter("realtime.runs");
    static auto& bunches = reg.counter("realtime.bunches");
    static auto& packages = reg.counter("realtime.packages");
    static auto& depth = reg.gauge("realtime.max_outstanding");
    static auto& skew = reg.gauge("realtime.max_skew_ms");
    static auto& cancelled = reg.counter("realtime.cancelled");
    if (report.stopped) cancelled.increment();
    runs.increment();
    bunches.add(view.bunch_count());
    packages.add(report.packages);
    depth.update_max(static_cast<double>(max_outstanding));
    skew.update_max(report.max_timing_error_ms);
  }
  return report;
}

}  // namespace tracer::core
