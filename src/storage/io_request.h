// Block-level I/O request/completion types shared by devices, the RAID
// engine, and the replay core. Mirrors the blktrace IO_package: starting
// sector, size in bytes, and operation type (§IV-A, Fig 4).
#pragma once

#include <cstdint>
#include <functional>

#include "util/types.h"

namespace tracer::storage {

struct IoRequest {
  std::uint64_t id = 0;  ///< caller-assigned correlation id
  Sector sector = 0;     ///< starting 512-byte sector
  Bytes bytes = 0;       ///< request size in bytes
  OpType op = OpType::kRead;

  Sector end_sector() const { return sector + (bytes + kSectorSize - 1) / kSectorSize; }
};

struct IoCompletion {
  std::uint64_t id = 0;
  Seconds submit_time = 0.0;
  Seconds finish_time = 0.0;
  Bytes bytes = 0;
  OpType op = OpType::kRead;

  Seconds latency() const { return finish_time - submit_time; }
};

using CompletionCallback = std::function<void(const IoCompletion&)>;

}  // namespace tracer::storage
