#include <gtest/gtest.h>

#include "storage/disk_array.h"
#include "storage/raid_controller.h"

namespace tracer::storage {
namespace {

/// Instant fake disk recording child ops (same shape as the controller
/// unit tests, duplicated deliberately: degraded mode has its own fixture
/// needs and sharing headers between test binaries couples them).
class RecordingDisk final : public BlockDevice {
 public:
  RecordingDisk(sim::Simulator& sim, Bytes capacity)
      : BlockDevice(sim), capacity_(capacity) {}

  Bytes capacity() const override { return capacity_; }
  std::size_t outstanding() const override { return outstanding_; }
  std::string name() const override { return "recording"; }
  Watts power_at(Seconds) const override { return 0.0; }
  Joules energy_until(Seconds) override { return 0.0; }

  void submit(const IoRequest& request, CompletionCallback done) override {
    ops.push_back(request);
    ++outstanding_;
    sim_.schedule_in(1e-4, [this, request, done = std::move(done)] {
      --outstanding_;
      done(IoCompletion{request.id, sim_.now() - 1e-4, sim_.now(),
                        request.bytes, request.op});
    });
  }

  std::vector<IoRequest> ops;

 private:
  Bytes capacity_;
  std::size_t outstanding_ = 0;
};

struct Fixture {
  static constexpr Bytes kDiskCapacity = 64ULL * 1024 * 1024;
  sim::Simulator sim;
  std::vector<std::unique_ptr<RecordingDisk>> disks;
  std::vector<IoCompletion> completions;
  std::unique_ptr<RaidController> raid;

  explicit Fixture(std::size_t disk_count = 6) {
    std::vector<BlockDevice*> raw;
    for (std::size_t i = 0; i < disk_count; ++i) {
      disks.push_back(std::make_unique<RecordingDisk>(sim, kDiskCapacity));
      raw.push_back(disks.back().get());
    }
    RaidGeometry geometry(RaidLevel::kRaid5, disk_count, 128 * kKiB,
                          kDiskCapacity);
    raid = std::make_unique<RaidController>(sim, geometry, std::move(raw));
  }

  CompletionCallback collect() {
    return [this](const IoCompletion& c) { completions.push_back(c); };
  }

  std::size_t ops_on(std::size_t disk) const {
    return disks[disk]->ops.size();
  }
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& disk : disks) n += disk->ops.size();
    return n;
  }
};

TEST(DegradedRaid, FailDiskValidation) {
  Fixture f;
  EXPECT_THROW(f.raid->fail_disk(99), std::out_of_range);
  f.raid->fail_disk(2);
  EXPECT_TRUE(f.raid->degraded());
  EXPECT_THROW(f.raid->fail_disk(3), std::logic_error);  // double fault
  EXPECT_THROW(f.raid->restore_disk(3), std::logic_error);
  f.raid->restore_disk(2);
  EXPECT_FALSE(f.raid->degraded());
}

TEST(DegradedRaid, Raid0CannotDegrade) {
  sim::Simulator sim;
  RecordingDisk d0(sim, 64ULL << 20), d1(sim, 64ULL << 20);
  RaidGeometry geometry(RaidLevel::kRaid0, 2, 128 * kKiB, 64ULL << 20);
  RaidController raid(sim, geometry, {&d0, &d1});
  EXPECT_THROW(raid.fail_disk(0), std::logic_error);
}

TEST(DegradedRaid, ReadOnFailedDiskReconstructsFromSurvivors) {
  Fixture f;
  // Unit 0 of row 0 lives on disk 0 (parity on disk 5).
  f.raid->fail_disk(0);
  f.raid->submit(IoRequest{1, 0, 4096, OpType::kRead}, f.collect());
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.ops_on(0), 0u);           // failed member untouched
  EXPECT_EQ(f.total_ops(), 5u);         // 5 surviving members read
  EXPECT_EQ(f.raid->stats().reconstructed_reads, 1u);
}

TEST(DegradedRaid, ReadOnSurvivingDiskUnaffected) {
  Fixture f;
  f.raid->fail_disk(0);
  // Unit 1 of row 0 lives on disk 1.
  f.raid->submit(IoRequest{1, (128 * kKiB) / kSectorSize, 4096,
                           OpType::kRead},
                 f.collect());
  f.sim.run();
  EXPECT_EQ(f.total_ops(), 1u);
  EXPECT_EQ(f.raid->stats().reconstructed_reads, 0u);
}

TEST(DegradedRaid, WriteToFailedDataDiskRecomputesParityFromPeers) {
  Fixture f;
  f.raid->fail_disk(0);  // holds unit 0 of row 0
  f.raid->submit(IoRequest{1, 0, 4096, OpType::kWrite}, f.collect());
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.ops_on(0), 0u);
  // Reads: the 4 surviving data members (disks 1..4); write: parity (5).
  EXPECT_EQ(f.raid->stats().child_reads, 4u);
  EXPECT_EQ(f.raid->stats().child_writes, 1u);
  EXPECT_EQ(f.ops_on(5), 1u);
  EXPECT_EQ(f.disks[5]->ops[0].op, OpType::kWrite);
}

TEST(DegradedRaid, WriteWithFailedParityDiskSkipsParityMaintenance) {
  Fixture f;
  f.raid->fail_disk(5);  // parity of row 0
  f.raid->submit(IoRequest{1, 0, 4096, OpType::kWrite}, f.collect());
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.total_ops(), 1u);  // plain data write, no reads
  EXPECT_EQ(f.ops_on(0), 1u);
  EXPECT_EQ(f.raid->stats().child_reads, 0u);
}

TEST(DegradedRaid, FullStripeWriteSkipsFailedMember) {
  Fixture f;
  f.raid->fail_disk(1);
  const Bytes full_row = 5 * 128 * kKiB;
  f.raid->submit(IoRequest{1, 0, full_row, OpType::kWrite}, f.collect());
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.ops_on(1), 0u);
  EXPECT_EQ(f.total_ops(), 5u);  // 4 surviving data + parity
  EXPECT_EQ(f.raid->stats().full_stripe_writes, 1u);
}

TEST(DegradedRaid, RestoreReturnsToNormalPaths) {
  Fixture f;
  f.raid->fail_disk(0);
  f.raid->restore_disk(0);
  f.raid->submit(IoRequest{1, 0, 4096, OpType::kRead}, f.collect());
  f.sim.run();
  EXPECT_EQ(f.total_ops(), 1u);
  EXPECT_EQ(f.ops_on(0), 1u);
}

TEST(DegradedRaid, DegradedThroughputPenaltyOnRealArray) {
  // End-to-end: degraded random reads are measurably slower on the HDD
  // array (reconstruction touches every member).
  auto run = [](bool degrade) {
    sim::Simulator sim;
    DiskArray array(sim, ArrayConfig::hdd_testbed(6));
    if (degrade) {
      array.controller().fail_disk(0);
    }
    util::Rng rng(7);
    int completions = 0;
    for (int i = 0; i < 60; ++i) {
      array.submit(
          IoRequest{static_cast<std::uint64_t>(i), rng.below(1ULL << 28) * 8,
                    16 * kKiB, OpType::kRead},
          [&completions](const IoCompletion&) { ++completions; });
    }
    const Seconds end = sim.run();
    EXPECT_EQ(completions, 60);
    return end;
  };
  EXPECT_GT(run(true), run(false) * 1.3);
}

}  // namespace
}  // namespace tracer::storage
