// Append-only campaign journal (CSV). Completed tests stream here one row
// at a time, flushed as they land, so a crash or Ctrl-C mid-campaign loses
// at most the row being written; a restarted campaign loads the journal
// and skips every (trace_name, load_proportion) pair it already holds.
// The column set matches Database::export_csv, so the journal doubles as
// the campaign's results table.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "db/record.h"
#include "util/sync.h"

namespace tracer::db {

class CampaignJournal {
 public:
  /// Open `path` for appending, creating it (with a header row) when
  /// missing. Throws std::runtime_error when the file cannot be opened.
  explicit CampaignJournal(std::filesystem::path path);

  /// Append one record and flush. Thread-safe. Throws on write failure.
  void append(const TestRecord& record);

  const std::filesystem::path& path() const { return path_; }

  /// Load every well-formed row from `path`. A missing file is an empty
  /// journal; a torn tail row (crash mid-write) is skipped, not fatal.
  static std::vector<TestRecord> load(const std::filesystem::path& path);

  /// Resume key for a completed test: identifies the (trace, load) pair
  /// independent of test_id, which differs across process restarts.
  static std::string key(const std::string& trace_name,
                         double load_proportion);

 private:
  std::filesystem::path path_;  ///< immutable after construction
  std::ofstream out_ TRACER_GUARDED_BY(mutex_);
  util::Mutex mutex_;  ///< serialises append(): one row, one flush, atomically
};

}  // namespace tracer::db
