#include "util/string_util.h"

#include <gtest/gtest.h>

namespace tracer::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespace, DropsRuns) {
  const auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespace, EmptyInput) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("raid5-hdd6", "raid5"));
  EXPECT_FALSE(starts_with("raid", "raid5"));
  EXPECT_TRUE(ends_with("trace.replay", ".replay"));
  EXPECT_FALSE(ends_with("replay", ".replay"));
}

TEST(ToLower, MixedCase) { EXPECT_EQ(to_lower("AbC1!"), "abc1!"); }

TEST(ParseU64, ValidAndInvalid) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(parse_u64("  42 ", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12x", v));
  EXPECT_FALSE(parse_u64("-1", v));
}

TEST(ParseI64, Negative) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64("-99", v));
  EXPECT_EQ(v, -99);
}

TEST(ParseDouble, ValidAndInvalid) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5junk", v));
}

TEST(ParseSize, Suffixes) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_size("512", v));
  EXPECT_EQ(v, 512u);
  EXPECT_TRUE(parse_size("512B", v));
  EXPECT_EQ(v, 512u);
  EXPECT_TRUE(parse_size("4K", v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(parse_size("4k", v));
  EXPECT_EQ(v, 4096u);
  EXPECT_TRUE(parse_size("1M", v));
  EXPECT_EQ(v, 1048576u);
  EXPECT_TRUE(parse_size("2G", v));
  EXPECT_EQ(v, 2147483648u);
  EXPECT_FALSE(parse_size("", v));
  EXPECT_FALSE(parse_size("K", v));
  EXPECT_FALSE(parse_size("x4K", v));
}

TEST(FormatSize, RoundTripsParseSize) {
  for (std::uint64_t v : {512ull, 4096ull, 131072ull, 1048576ull,
                          1073741824ull, 1000ull, 21504ull}) {
    std::uint64_t parsed = 0;
    ASSERT_TRUE(parse_size(format_size(v), parsed)) << format_size(v);
    EXPECT_EQ(parsed, v);
  }
}

TEST(FormatSize, PicksLargestExactUnit) {
  EXPECT_EQ(format_size(4096), "4K");
  EXPECT_EQ(format_size(1048576), "1M");
  EXPECT_EQ(format_size(512), "512B");
  EXPECT_EQ(format_size(1536), "1536B");  // not a whole K
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace tracer::util
