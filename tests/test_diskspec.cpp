#include "storage/diskspec.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tracer::storage {
namespace {

constexpr const char* kSample = R"(tracer_diskspecs v1

# The Table II testbed drive.
disk seagate-7200.12 {
  capacity_gb        500
  rpm                7200
  cylinders          100000
  track_to_track_ms  1.0
  full_stroke_ms     15.0
  settle_ms          0.4
  command_overhead_ms 0.10
  outer_rate_mbps    125   # outer zone
  inner_rate_mbps    60
  idle_watts         8.0
  seek_watts         4.5
  transfer_watts     2.2
  write_watts        0.6
  standby_watts      1.2
  spin_up_s          6.0
  spin_up_watts      16.0
}

disk laptop-5400 {
  capacity_gb        250
  rpm                5400
  cylinders          80000
  full_stroke_ms     18.0
  outer_rate_mbps    90
  inner_rate_mbps    45
  idle_watts         2.5
}
)";

TEST(DiskSpec, ParsesSampleBlocks) {
  const auto specs = parse_diskspecs(kSample);
  ASSERT_EQ(specs.size(), 2u);
  const HddParams& seagate = specs.at("seagate-7200.12");
  EXPECT_EQ(seagate.name, "seagate-7200.12");
  EXPECT_EQ(seagate.capacity, 500'000'000'000ULL);
  EXPECT_DOUBLE_EQ(seagate.rpm, 7200.0);
  EXPECT_EQ(seagate.cylinders, 100000u);
  EXPECT_DOUBLE_EQ(seagate.track_to_track_seek, 1.0e-3);
  EXPECT_DOUBLE_EQ(seagate.outer_rate_mbps, 125.0);
  EXPECT_DOUBLE_EQ(seagate.idle_watts, 8.0);
  EXPECT_DOUBLE_EQ(seagate.spin_up_time, 6.0);
}

TEST(DiskSpec, OmittedKeysKeepDefaults) {
  const auto specs = parse_diskspecs(kSample);
  const HddParams& laptop = specs.at("laptop-5400");
  EXPECT_DOUBLE_EQ(laptop.rpm, 5400.0);
  // settle_ms was omitted -> the HddParams default survives.
  EXPECT_DOUBLE_EQ(laptop.settle_time, HddParams{}.settle_time);
}

TEST(DiskSpec, ParsedParamsBuildAWorkingModel) {
  const auto specs = parse_diskspecs(kSample);
  sim::Simulator sim;
  HddModel hdd(sim, specs.at("seagate-7200.12"), 1);
  bool done = false;
  hdd.submit(IoRequest{1, 0, 4096, OpType::kRead},
             [&done](const IoCompletion&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(hdd.power_at(0.0), 8.0);
}

TEST(DiskSpec, RejectsMalformedInput) {
  auto expect_fail = [](const std::string& text, const char* needle) {
    try {
      parse_diskspecs(text);
      FAIL() << "expected throw: " << needle;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_fail("disk a {\n}\n", "header");
  expect_fail("tracer_diskspecs v1\njunk line\n", "disk <name>");
  expect_fail("tracer_diskspecs v1\ndisk a {\n  bogus_key 5\n}\n",
              "unknown key");
  expect_fail("tracer_diskspecs v1\ndisk a {\n  rpm fast\n}\n", "bad value");
  expect_fail("tracer_diskspecs v1\ndisk a {\n  rpm 7200\n", "unterminated");
  expect_fail("tracer_diskspecs v1\n", "empty");
  expect_fail(
      "tracer_diskspecs v1\ndisk a {\n  capacity_gb 1\n  rpm 7200\n}\n"
      "disk a {\n  capacity_gb 1\n  rpm 7200\n}\n",
      "duplicate");
}

TEST(DiskSpec, RejectsPhysicallyInvalidSpecs) {
  auto expect_fail = [](const char* body, const char* needle) {
    const std::string text =
        std::string("tracer_diskspecs v1\ndisk a {\n") + body + "}\n";
    try {
      parse_diskspecs(text);
      FAIL() << "expected throw: " << needle;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_fail("  capacity_gb 0\n  rpm 7200\n", "capacity");
  expect_fail("  capacity_gb 100\n  rpm 0\n", "rpm");
  expect_fail(
      "  capacity_gb 100\n  rpm 7200\n  track_to_track_ms 5\n"
      "  full_stroke_ms 2\n",
      "full stroke");
  expect_fail("  capacity_gb 100\n  rpm 7200\n  idle_watts -1\n",
              "negative power");
}

TEST(DiskSpec, FormatParseRoundTrip) {
  HddParams params;
  params.capacity = 320'000'000'000ULL;
  params.rpm = 10000.0;
  params.idle_watts = 9.5;
  params.spin_up_time = 4.5;
  const std::string text = format_diskspec("enterprise-10k", params);
  const auto specs = parse_diskspecs(text);
  ASSERT_EQ(specs.size(), 1u);
  const HddParams& parsed = specs.at("enterprise-10k");
  EXPECT_EQ(parsed.capacity, params.capacity);
  EXPECT_DOUBLE_EQ(parsed.rpm, params.rpm);
  EXPECT_DOUBLE_EQ(parsed.idle_watts, params.idle_watts);
  EXPECT_DOUBLE_EQ(parsed.spin_up_time, params.spin_up_time);
}

TEST(DiskSpec, LoadsFromFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "tracer_diskspec_test.spec";
  {
    std::ofstream out(path);
    out << kSample;
  }
  const auto specs = load_diskspecs(path.string());
  EXPECT_EQ(specs.size(), 2u);
  std::filesystem::remove(path);
  EXPECT_THROW(load_diskspecs(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace tracer::storage
