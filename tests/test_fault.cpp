#include "net/fault.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"

namespace tracer::net {
namespace {

Frame frame_of(const std::string& text) {
  return Frame(text.begin(), text.end());
}

TEST(FaultyEndpoint, DefaultConstructedIsInert) {
  FaultyEndpoint endpoint;
  EXPECT_FALSE(endpoint.connected());
  EXPECT_TRUE(endpoint.peer_closed());
  EXPECT_FALSE(endpoint.send(frame_of("x")));
  EXPECT_FALSE(endpoint.poll().has_value());
  EXPECT_FALSE(endpoint.recv(0.0).has_value());
  EXPECT_EQ(endpoint.stats().sent, 0u);
}

TEST(FaultyEndpoint, CleanPlanDeliversInOrder) {
  auto [a, b] = make_faulty_channel(FaultPlan{}, FaultPlan{});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.send(frame_of("frame" + std::to_string(i))));
  }
  for (int i = 0; i < 10; ++i) {
    auto got = b.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, frame_of("frame" + std::to_string(i)));
  }
  EXPECT_FALSE(b.poll().has_value());
  const FaultStats stats = a.stats();
  EXPECT_EQ(stats.sent, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.corrupted, 0u);
}

TEST(FaultyEndpoint, DropRateOneLosesEverythingSilently) {
  FaultPlan lossy;
  lossy.drop_rate = 1.0;
  auto [a, b] = make_faulty_channel(lossy, FaultPlan{});
  for (int i = 0; i < 5; ++i) {
    // The sender cannot tell: send still reports success.
    EXPECT_TRUE(a.send(frame_of("gone" + std::to_string(i))));
  }
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_EQ(a.stats().dropped, 5u);
}

TEST(FaultyEndpoint, DuplicateRateOneDeliversTwice) {
  FaultPlan dupey;
  dupey.duplicate_rate = 1.0;
  auto [a, b] = make_faulty_channel(dupey, FaultPlan{});
  ASSERT_TRUE(a.send(frame_of("twin")));
  auto first = b.poll();
  auto second = b.poll();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, *second);
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_EQ(a.stats().duplicated, 1u);
}

TEST(FaultyEndpoint, CorruptionFlipsExactlyOneBit) {
  FaultPlan noisy;
  noisy.corrupt_rate = 1.0;
  auto [a, b] = make_faulty_channel(noisy, FaultPlan{});
  const Frame original = frame_of("precious payload");
  ASSERT_TRUE(a.send(original));
  auto got = b.poll();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), original.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = (*got)[i] ^ original[i];
    while (diff) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(a.stats().corrupted, 1u);
}

TEST(FaultyEndpoint, CorruptedMessageFrameFailsChecksum) {
  FaultPlan noisy;
  noisy.corrupt_rate = 1.0;
  auto [a, b] = make_faulty_channel(noisy, FaultPlan{});
  Message message;
  message.type = MessageType::kStartTest;
  message.sequence = 7;
  message.set("key", "value");
  ASSERT_TRUE(a.send(message.serialize()));
  auto got = b.poll();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(Message::try_deserialize(*got).has_value());
}

TEST(FaultyEndpoint, DelayedFrameArrivesAfterHold) {
  FaultPlan slow;
  slow.delay_rate = 1.0;
  slow.delay = 0.02;
  auto [a, b] = make_faulty_channel(slow, FaultPlan{});
  ASSERT_TRUE(a.send(frame_of("late")));
  // Not delivered synchronously...
  EXPECT_FALSE(b.poll().has_value());
  // ...but a blocking recv spanning the hold gets it. The due frame sits
  // on the *sender's* side, so the sender must pump it out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  std::optional<Frame> got;
  while (!got && std::chrono::steady_clock::now() < deadline) {
    a.pump();
    got = b.recv(0.005);
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame_of("late"));
  EXPECT_EQ(a.stats().delayed, 1u);
}

TEST(FaultyEndpoint, ReorderSwapsWithNextFrame) {
  FaultPlan jumbled;
  jumbled.reorder_rate = 1.0;
  auto [a, b] = make_faulty_channel(jumbled, FaultPlan{});
  ASSERT_TRUE(a.send(frame_of("first")));
  ASSERT_TRUE(a.send(frame_of("second")));
  // "first" was held; "second" cannot be held too (one reorder slot), so it
  // goes out directly and releases the hold right behind it.
  auto one = b.poll();
  auto two = b.poll();
  ASSERT_TRUE(one && two);
  EXPECT_EQ(*one, frame_of("second"));
  EXPECT_EQ(*two, frame_of("first"));
  EXPECT_EQ(a.stats().reordered, 1u);
}

TEST(FaultyEndpoint, StallSwallowsWhileReportingSuccess) {
  FaultPlan halfopen;
  halfopen.stall_after = 2;
  auto [a, b] = make_faulty_channel(halfopen, FaultPlan{});
  EXPECT_TRUE(a.send(frame_of("one")));
  EXPECT_TRUE(a.send(frame_of("two")));
  EXPECT_TRUE(a.send(frame_of("three")));  // stalled, but "succeeds"
  EXPECT_TRUE(a.send(frame_of("four")));
  EXPECT_TRUE(b.poll().has_value());
  EXPECT_TRUE(b.poll().has_value());
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_EQ(a.stats().stalled, 2u);
  // The link never actually closed.
  EXPECT_FALSE(a.peer_closed());
}

TEST(FaultyEndpoint, DisconnectAtClosesHard) {
  FaultPlan doomed;
  doomed.disconnect_at = 3;
  auto [a, b] = make_faulty_channel(doomed, FaultPlan{});
  EXPECT_TRUE(a.send(frame_of("one")));
  EXPECT_TRUE(a.send(frame_of("two")));
  EXPECT_FALSE(a.send(frame_of("three")));  // the fatal send
  EXPECT_FALSE(a.send(frame_of("four")));   // link already down
  EXPECT_TRUE(a.stats().disconnected);
  // The peer drains what made it through, then sees the hang-up.
  EXPECT_TRUE(b.poll().has_value());
  EXPECT_TRUE(b.poll().has_value());
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_TRUE(b.peer_closed());
}

TEST(FaultyEndpoint, FaultDecisionsAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.drop_rate = 0.3;
    plan.duplicate_rate = 0.2;
    plan.corrupt_rate = 0.1;
    plan.seed = seed;
    auto [a, b] = make_faulty_channel(plan, FaultPlan{});
    for (int i = 0; i < 200; ++i) {
      a.send(frame_of("payload number " + std::to_string(i)));
    }
    std::vector<Frame> delivered;
    while (auto f = b.poll()) delivered.push_back(std::move(*f));
    return std::make_pair(a.stats(), delivered);
  };
  const auto [stats1, frames1] = run(42);
  const auto [stats2, frames2] = run(42);
  EXPECT_EQ(stats1.dropped, stats2.dropped);
  EXPECT_EQ(stats1.duplicated, stats2.duplicated);
  EXPECT_EQ(stats1.corrupted, stats2.corrupted);
  EXPECT_EQ(frames1, frames2);
  EXPECT_GT(stats1.dropped, 0u);
  EXPECT_GT(stats1.duplicated, 0u);

  // A different seed makes different decisions on the same traffic.
  const auto [stats3, frames3] = run(1234567);
  EXPECT_NE(frames1, frames3);
}

TEST(FaultyEndpoint, RetransmitGetsIndependentDecision) {
  // A dropped frame's retransmit must not be doomed to the same fate just
  // because it carries the same command: a fresh sequence number changes
  // the bytes, so the content hash (and the decision) changes.
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.seed = 9;
  auto [a, b] = make_faulty_channel(plan, FaultPlan{});
  Message command;
  command.type = MessageType::kStartTest;
  int delivered = 0;
  for (std::uint32_t attempt = 1; attempt <= 64; ++attempt) {
    command.sequence = attempt;  // what a call() retry does
    a.send(command.serialize());
    if (b.poll()) ++delivered;
  }
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 64);
}

TEST(FaultyEndpoint, CloseDiscardsPendingFrames) {
  FaultPlan slow;
  slow.delay_rate = 1.0;
  slow.delay = 10.0;  // far future
  auto [a, b] = make_faulty_channel(slow, FaultPlan{});
  ASSERT_TRUE(a.send(frame_of("never")));
  a.close();
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_TRUE(b.peer_closed());
}

}  // namespace
}  // namespace tracer::net
