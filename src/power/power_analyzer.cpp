#include "power/power_analyzer.h"

#include <cmath>
#include <stdexcept>

#include "obs/registry.h"

namespace tracer::power {

Watts ChannelReport::mean_watts() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples) sum += s.watts;
  return sum / static_cast<double>(samples.size());
}

Watts ChannelReport::mean_true_watts() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples) sum += s.true_watts;
  return sum / static_cast<double>(samples.size());
}

Joules ChannelReport::measured_joules(Seconds cycle) const {
  double sum = 0.0;
  for (const auto& s : samples) sum += s.watts * cycle;
  return sum;
}

PowerAnalyzer::PowerAnalyzer(Seconds cycle, HallSensorParams sensor,
                             std::uint64_t seed)
    : cycle_(cycle), sensor_params_(sensor), seed_rng_(seed) {
  if (!(cycle > 0.0)) {
    throw std::invalid_argument("PowerAnalyzer: cycle must be > 0");
  }
}

std::size_t PowerAnalyzer::add_channel(PowerSource& source) {
  util::MutexLock lock(mutex_);
  if (running_) {
    throw std::logic_error("PowerAnalyzer: cannot add channels mid-run");
  }
  Channel channel{&source, HallSensor(sensor_params_, seed_rng_.split()),
                  ChannelReport{}, 0.0, 0.0};
  channel.report.name = source.name();
  channels_.push_back(std::move(channel));
  return channels_.size() - 1;
}

void PowerAnalyzer::start(Seconds t) {
  util::MutexLock lock(mutex_);
  started_at_ = t;
  last_sample_ = t;
  running_ = true;
  stopped_ = false;
  for (auto& channel : channels_) {
    channel.energy_at_start = channel.source->energy_until(t);
    channel.last_energy = channel.energy_at_start;
    channel.report.samples.clear();
    channel.report.true_joules = 0.0;
  }
}

void PowerAnalyzer::stop() {
  util::MutexLock lock(mutex_);
  if (!running_) return;
  running_ = false;
  stopped_ = true;
}

void PowerAnalyzer::sample_at(Seconds t) {
  util::MutexLock lock(mutex_);
  if (!running_) {
    if (stopped_) {
      // Window closed: the driver's sampling loop may lag the STOP command;
      // its readings must not leak into the finished report.
      static auto& ignored =
          obs::Registry::global().counter("power.samples_ignored");
      ignored.increment();
      return;
    }
    throw std::logic_error("PowerAnalyzer: sample_at before start");
  }
  const Seconds dt = t - last_sample_;
  if (!(dt > 0.0)) return;  // duplicate boundary; nothing to integrate
  static auto& samples = obs::Registry::global().counter("power.samples");
  samples.add(channels_.size());
  for (auto& channel : channels_) {
    const Joules energy = channel.source->energy_until(t);
    const Watts true_avg = (energy - channel.last_energy) / dt;
    channel.last_energy = energy;
    channel.report.true_joules = energy - channel.energy_at_start;
    channel.report.samples.push_back(channel.sensor.measure(t, true_avg));
  }
  last_sample_ = t;
}

void PowerAnalyzer::schedule_sampling(sim::Simulator& sim, Seconds t_start,
                                      Seconds t_end) {
  sim.schedule_at(t_start, [this, t_start] { start(t_start); });
  // Epsilon-tolerant: when the window is an exact multiple of the cycle,
  // FP division can land just below the integer (0.7 / 0.1 == 6.999...)
  // and a bare floor would drop the sample at t_end.
  const auto cycles = static_cast<std::uint64_t>(
      std::floor((t_end - t_start) / cycle_ + 1e-9));
  for (std::uint64_t i = 1; i <= cycles; ++i) {
    const Seconds t = t_start + static_cast<double>(i) * cycle_;
    sim.schedule_at(t, [this, t] { sample_at(t); });
  }
}

const ChannelReport& PowerAnalyzer::report(std::size_t channel) const {
  // The returned reference outlives the lock; see the header contract
  // (reports are read after stop(), never while a window is sampling).
  util::MutexLock lock(mutex_);
  return channels_.at(channel).report;
}

void PowerAnalyzer::reset() {
  util::MutexLock lock(mutex_);
  running_ = false;
  stopped_ = false;
  for (auto& channel : channels_) {
    channel.report.samples.clear();
    channel.report.true_joules = 0.0;
    channel.energy_at_start = 0.0;
    channel.last_energy = 0.0;
  }
}

}  // namespace tracer::power
