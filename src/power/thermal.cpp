#include "power/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tracer::power {

ThermalNode::ThermalNode(const ThermalParams& params)
    : params_(params), temperature_(params.ambient_c) {
  if (!(params_.resistance_c_per_w > 0.0) ||
      !(params_.capacitance_j_per_c > 0.0) ||
      !(params_.afr_doubling_c > 0.0)) {
    throw std::invalid_argument("ThermalNode: R, C, doubling must be > 0");
  }
}

double ThermalNode::equilibrium_c(Watts watts) const {
  return params_.ambient_c + watts * params_.resistance_c_per_w;
}

void ThermalNode::step(Seconds dt, Watts watts) {
  if (!(dt > 0.0)) return;
  const double target = equilibrium_c(watts);
  const double tau =
      params_.resistance_c_per_w * params_.capacitance_j_per_c;
  temperature_ = target + (temperature_ - target) * std::exp(-dt / tau);
}

double ThermalNode::reliability_derating() const {
  return std::pow(2.0, (temperature_ - params_.nominal_c) /
                           params_.afr_doubling_c);
}

ThermalMonitor::ThermalMonitor(PowerSource& source,
                               const ThermalParams& params, Seconds cycle)
    : source_(source), node_(params), cycle_(cycle) {
  if (!(cycle > 0.0)) {
    throw std::invalid_argument("ThermalMonitor: cycle must be > 0");
  }
}

void ThermalMonitor::start(Seconds t) {
  running_ = true;
  last_sample_ = t;
  last_energy_ = source_.energy_until(t);
  samples_.clear();
}

void ThermalMonitor::sample_at(Seconds t) {
  if (!running_) {
    throw std::logic_error("ThermalMonitor: sample_at before start");
  }
  const Seconds dt = t - last_sample_;
  if (!(dt > 0.0)) return;
  const Joules energy = source_.energy_until(t);
  const Watts avg = (energy - last_energy_) / dt;
  node_.step(dt, avg);
  samples_.push_back(ThermalSample{t, node_.temperature_c(), avg});
  last_sample_ = t;
  last_energy_ = energy;
}

void ThermalMonitor::schedule_sampling(sim::Simulator& sim, Seconds t_start,
                                       Seconds t_end) {
  sim.schedule_at(t_start, [this, t_start] { start(t_start); });
  const auto cycles =
      static_cast<std::uint64_t>(std::floor((t_end - t_start) / cycle_));
  for (std::uint64_t i = 1; i <= cycles; ++i) {
    const Seconds t = t_start + static_cast<double>(i) * cycle_;
    sim.schedule_at(t, [this, t] { sample_at(t); });
  }
}

double ThermalMonitor::max_c() const {
  double best = node_.params().ambient_c;
  for (const auto& sample : samples_) best = std::max(best, sample.celsius);
  return best;
}

double ThermalMonitor::mean_c() const {
  if (samples_.empty()) return node_.params().ambient_c;
  double sum = 0.0;
  for (const auto& sample : samples_) sum += sample.celsius;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace tracer::power
