// Cooperative cancellation for sweeps and campaigns. A CancelToken is a
// one-way latch: anything holding a reference may request cancellation
// (including a signal handler — request_cancel is a single atomic store),
// and long-running work polls cancelled() at safe points to stop cleanly.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

namespace tracer::util {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latch cancellation. Async-signal-safe (plain atomic store).
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arm a spent token (e.g. between campaign runs). Not safe while
  /// work holding this token is still in flight.
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

  /// Sleep up to `seconds`, waking early on cancellation. Polls in small
  /// slices instead of waiting on a condition variable so request_cancel
  /// stays signal-safe. Returns true when the sleep was cut short.
  bool sleep_for(double seconds) const {
    using namespace std::chrono;
    constexpr auto kSlice = milliseconds(10);
    const auto deadline =
        steady_clock::now() +
        duration_cast<steady_clock::duration>(duration<double>(seconds));
    while (!cancelled()) {
      const auto now = steady_clock::now();
      if (now >= deadline) return false;
      std::this_thread::sleep_for(
          std::min<steady_clock::duration>(deadline - now, kSlice));
    }
    return true;
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace tracer::util
