#include "net/messenger.h"

namespace tracer::net {

Message Messenger::handle(const Message& command, Seconds now) {
  switch (command.type) {
    case MessageType::kPowerInit:
      initialized_ = true;
      running_ = false;
      analyzer_.reset();
      return make_ack(command.sequence);

    case MessageType::kPowerStart:
      if (!initialized_) {
        return make_error(command.sequence, "power analyzer not initialized");
      }
      if (running_) {
        return make_error(command.sequence, "power measurement already running");
      }
      // start() opens a clean window, so START/STOP/START without a
      // re-INIT never carries samples from the previous run forward.
      analyzer_.start(now);
      running_ = true;
      return make_ack(command.sequence);

    case MessageType::kPowerStop: {
      if (!initialized_) {
        return make_error(command.sequence, "power analyzer not initialized");
      }
      if (!running_) {
        return make_error(command.sequence, "power measurement not running");
      }
      // Close the final (possibly partial) cycle, then end the window so
      // stray sample ticks after STOP cannot pollute the returned report.
      analyzer_.sample_at(now);
      Message result = power_result(command.sequence);
      analyzer_.stop();
      running_ = false;
      return result;
    }

    default:
      return make_error(command.sequence,
                        std::string("messenger cannot handle ") +
                            to_string(command.type));
  }
}

Message Messenger::power_result(std::uint32_t sequence) const {
  Message result;
  result.type = MessageType::kPowerResult;
  result.sequence = sequence;
  result.set_u64("channels", analyzer_.channel_count());
  for (std::size_t ch = 0; ch < analyzer_.channel_count(); ++ch) {
    const auto& report = analyzer_.report(ch);
    const std::string prefix = "ch" + std::to_string(ch) + ".";
    result.set(prefix + "name", report.name);
    result.set_double(prefix + "watts", report.mean_watts());
    result.set_double(prefix + "joules",
                      report.measured_joules(analyzer_.cycle()));
    double volts = 0.0;
    double amps = 0.0;
    if (!report.samples.empty()) {
      for (const auto& s : report.samples) {
        volts += s.volts;
        amps += s.amps;
      }
      volts /= static_cast<double>(report.samples.size());
      amps /= static_cast<double>(report.samples.size());
    }
    result.set_double(prefix + "volts", volts);
    result.set_double(prefix + "amps", amps);
    result.set_u64(prefix + "samples", report.samples.size());
  }
  return result;
}

}  // namespace tracer::net
