#include "trace/repository.h"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>

#include "trace/trace_source.h"

namespace tracer::trace {
namespace {

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tracer_repo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Trace tiny_trace() {
  Trace trace;
  trace.device = "raid5-hdd6";
  Bunch bunch;
  bunch.timestamp = 0.0;
  bunch.packages.push_back(IoPackage{0, 4096, OpType::kRead});
  trace.bunches.push_back(bunch);
  return trace;
}

TEST(TraceKey, FileNameEncodesAllFields) {
  TraceKey key{"raid5-hdd6", 4096, 50, 25};
  EXPECT_EQ(key.file_name(), "raid5-hdd6_rs4K_rnd50_rd25.replay");
}

TEST(TraceKey, ParseRoundTripsFileName) {
  for (const TraceKey& key : {
           TraceKey{"raid5-hdd6", 4096, 50, 25},
           TraceKey{"ssd", 512, 0, 100},
           TraceKey{"dev_with_underscore", 1048576, 100, 0},
       }) {
    const auto parsed = TraceKey::parse(key.file_name());
    ASSERT_TRUE(parsed.has_value()) << key.file_name();
    EXPECT_EQ(*parsed, key);
  }
}

TEST(TraceKey, ParseRejectsForeignNames) {
  EXPECT_FALSE(TraceKey::parse("notes.txt").has_value());
  EXPECT_FALSE(TraceKey::parse("x.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rs4K_rnd50.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rsXX_rnd50_rd0.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rs4K_rnd200_rd0.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("_rs4K_rnd50_rd0.replay").has_value());
}

TEST_F(RepositoryTest, StoreLoadRoundTrip) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 50, 0};
  const Trace trace = tiny_trace();
  EXPECT_FALSE(repo.contains(key));
  repo.store(key, trace);
  EXPECT_TRUE(repo.contains(key));
  EXPECT_EQ(repo.load(key), trace);
}

TEST_F(RepositoryTest, LoadMissingThrows) {
  TraceRepository repo(dir_);
  EXPECT_THROW(repo.load(TraceKey{"x", 512, 0, 0}), std::runtime_error);
}

TEST_F(RepositoryTest, ListReturnsSortedKeysAndSkipsForeignFiles) {
  TraceRepository repo(dir_);
  repo.store(TraceKey{"b", 4096, 50, 0}, tiny_trace());
  repo.store(TraceKey{"a", 512, 0, 100}, tiny_trace());
  { std::ofstream junk(dir_ / "README.txt"); junk << "hi"; }
  const auto keys = repo.list();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].device, "a");
  EXPECT_EQ(keys[1].device, "b");
}

TEST_F(RepositoryTest, StoreOverwritesExisting) {
  TraceRepository repo(dir_);
  const TraceKey key{"dev", 4096, 0, 0};
  repo.store(key, tiny_trace());
  Trace bigger = tiny_trace();
  bigger.bunches.push_back(bigger.bunches[0]);
  repo.store(key, bigger);
  EXPECT_EQ(repo.load(key).bunch_count(), 2u);
}

TEST_F(RepositoryTest, CreatesDirectoryOnConstruction) {
  EXPECT_FALSE(std::filesystem::exists(dir_));
  TraceRepository repo(dir_ / "nested" / "deeper");
  EXPECT_TRUE(std::filesystem::exists(dir_ / "nested" / "deeper"));
}

// --- verified bijection -----------------------------------------------------

// Property: every encodable key survives file_name() -> parse() unchanged,
// including irregular request sizes that don't collapse to a K/M/G suffix.
TEST(TraceKey, BijectionHoldsForIrregularKeys) {
  const Bytes sizes[] = {1,       512,        513,
                         1023,    1234567,    1048576,
                         1048577, 4096,       std::uint64_t{1} << 40,
                         std::numeric_limits<std::uint32_t>::max()};
  const char* devices[] = {"d", "raid5-hdd6", "dev_with_underscore",
                           "a-b_c-d", "x0123456789"};
  for (const char* device : devices) {
    for (const Bytes size : sizes) {
      for (const int rnd : {0, 1, 50, 99, 100}) {
        for (const int rd : {0, 100}) {
          const TraceKey key{device, size, rnd, rd};
          const auto parsed = TraceKey::parse(key.file_name());
          ASSERT_TRUE(parsed.has_value()) << key.file_name();
          EXPECT_EQ(*parsed, key) << key.file_name();
        }
      }
    }
  }
}

TEST(TraceKey, FileNameRejectsUnencodableKeys) {
  EXPECT_THROW((TraceKey{"", 4096, 50, 0}.file_name()), std::invalid_argument);
  EXPECT_THROW((TraceKey{"a/b", 4096, 50, 0}.file_name()),
               std::invalid_argument);
  EXPECT_THROW((TraceKey{"a\\b", 4096, 50, 0}.file_name()),
               std::invalid_argument);
  EXPECT_THROW((TraceKey{"dev", 4096, -1, 0}.file_name()),
               std::invalid_argument);
  EXPECT_THROW((TraceKey{"dev", 4096, 101, 0}.file_name()),
               std::invalid_argument);
  EXPECT_THROW((TraceKey{"dev", 4096, 0, -1}.file_name()),
               std::invalid_argument);
  EXPECT_THROW((TraceKey{"dev", 4096, 0, 101}.file_name()),
               std::invalid_argument);
}

// parse() accepts only the canonical encoding: a name that decodes but
// re-encodes differently (wrong case, leading zeros) is foreign, so
// parse(file_name(key)) == key is a true bijection, not just a retraction.
TEST(TraceKey, ParseRejectsNonCanonicalEncodings) {
  ASSERT_TRUE(TraceKey::parse("dev_rs4K_rnd50_rd25.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("dev_rs4k_rnd50_rd25.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("dev_rs4096_rnd50_rd25.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("dev_rs4K_rnd050_rd25.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("dev_rs4K_rnd50_rd025.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("dev_rs04K_rnd50_rd25.replay").has_value());
}

TEST(TraceKey, ColumnarFileNameSharesStem) {
  const TraceKey key{"raid5-hdd6", 4096, 50, 25};
  EXPECT_EQ(key.columnar_file_name(), "raid5-hdd6_rs4K_rnd50_rd25.replay2");
  const auto parsed = TraceKey::parse(key.columnar_file_name());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key);
}

// --- columnar entries -------------------------------------------------------

TEST_F(RepositoryTest, ColumnarStoreLoadRoundTrip) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 50, 0};
  const Trace trace = tiny_trace();
  EXPECT_FALSE(repo.contains_columnar(key));
  repo.store_columnar(key, trace);
  EXPECT_TRUE(repo.contains_columnar(key));
  EXPECT_FALSE(repo.contains(key));  // no v1 entry was created
  EXPECT_EQ(repo.load(key), trace);  // load falls back to the v2 entry
}

TEST_F(RepositoryTest, LoadSourceStreamsColumnarEntry) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 0, 100};
  repo.store_columnar(key, tiny_trace());
  const auto source = repo.load_source(key);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(materialize(*source), tiny_trace());
}

TEST_F(RepositoryTest, LoadSourceFallsBackToV1) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 0, 0};
  repo.store(key, tiny_trace());
  const auto source = repo.load_source(key);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(materialize(*source), tiny_trace());
  EXPECT_THROW(repo.load_source(TraceKey{"missing", 512, 0, 0}),
               std::runtime_error);
}

TEST_F(RepositoryTest, ConvertToColumnarAndBack) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 50, 50};
  const Trace trace = tiny_trace();
  repo.store(key, trace);
  EXPECT_EQ(repo.convert_to_columnar(key), trace.bunch_count());
  EXPECT_TRUE(repo.contains_columnar(key));
  // Second call without overwrite is a no-op that reports the entry size.
  EXPECT_EQ(repo.convert_to_columnar(key), trace.bunch_count());
  std::filesystem::remove(repo.path_for(key));
  EXPECT_FALSE(repo.contains(key));
  EXPECT_EQ(repo.convert_to_blk(key), trace.bunch_count());
  EXPECT_TRUE(repo.contains(key));
  EXPECT_EQ(repo.load(key), trace);
}

TEST_F(RepositoryTest, ListDedupsFormatsAndIncludesColumnarOnly) {
  TraceRepository repo(dir_);
  const TraceKey both{"b", 4096, 50, 0};
  repo.store(both, tiny_trace());
  repo.store_columnar(both, tiny_trace());
  const TraceKey v2_only{"a", 512, 0, 100};
  repo.store_columnar(v2_only, tiny_trace());
  const auto keys = repo.list();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], v2_only);
  EXPECT_EQ(keys[1], both);
}

}  // namespace
}  // namespace tracer::trace
