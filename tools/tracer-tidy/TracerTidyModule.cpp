// TracerTidyModule: registers the five TRACER invariant checks with
// clang-tidy. Loaded with `clang-tidy -load=libtracer_tidy_module.so
// -checks=tracer-*` (scripts/run_clang_tidy.sh --plugin does this); the
// check set and its rationale live in docs/STATIC_ANALYSIS.md.
#include "LosslessDoubleFormatCheck.h"
#include "NoNakedSyncCheck.h"
#include "NoNondeterminismInSimCheck.h"
#include "UncheckedNarrowingInCodecCheck.h"
#include "NoWallclockCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace tracer {

class TracerTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoWallclockCheck>("tracer-no-wallclock");
    CheckFactories.registerCheck<NoNakedSyncCheck>("tracer-no-naked-sync");
    CheckFactories.registerCheck<LosslessDoubleFormatCheck>(
        "tracer-lossless-double-format");
    CheckFactories.registerCheck<NoNondeterminismInSimCheck>(
        "tracer-no-nondeterminism-in-sim");
    CheckFactories.registerCheck<UncheckedNarrowingInCodecCheck>(
        "tracer-unchecked-narrowing-in-codec");
  }
};

} // namespace tracer

// Register the module with clang-tidy's global registry; the anchor keeps
// the registration object alive in the shared module.
static ClangTidyModuleRegistry::Add<tracer::TracerTidyModule>
    X("tracer-module", "TRACER determinism/clock/lock/wire invariants");
volatile int TracerTidyModuleAnchorSource = 0;

} // namespace clang::tidy
