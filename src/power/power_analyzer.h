// Multi-channel power analyzer (§III-A3).
//
// Each channel clamps a HallSensor around one PowerSource and takes one
// reading per sampling cycle (default 1 s, configurable like the paper's
// GUI parameter). Channels are sampled in lock-step so multiple storage
// systems can be tested simultaneously, mirroring the KS706's multi-channel
// operation and the Fig 3 distributed deployment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/hall_sensor.h"
#include "power/power_source.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/sync.h"

namespace tracer::power {

/// Everything recorded for one channel over a test run.
struct ChannelReport {
  std::string name;
  std::vector<PowerSample> samples;

  /// Mean measured power across samples (what the paper reports as "power
  /// data" in each database record).
  Watts mean_watts() const;
  /// Mean true power (for instrument-error analysis in tests).
  Watts mean_true_watts() const;
  /// Measured energy = sum(sample watts * cycle).
  Joules measured_joules(Seconds cycle) const;
  Joules true_joules = 0.0;
};

class PowerAnalyzer {
 public:
  /// cycle: sampling period in seconds (paper default 1 s).
  explicit PowerAnalyzer(Seconds cycle = 1.0,
                         HallSensorParams sensor = HallSensorParams{},
                         std::uint64_t seed = 1);

  PowerAnalyzer(const PowerAnalyzer&) = delete;
  PowerAnalyzer& operator=(const PowerAnalyzer&) = delete;

  Seconds cycle() const { return cycle_; }

  /// Register a source; returns the channel index. The source must outlive
  /// the analyzer. Each channel gets an independently miscalibrated sensor.
  std::size_t add_channel(PowerSource& source);

  /// Begin measuring at absolute time t (first cycle ends at t + cycle).
  /// Always opens a clean window: prior samples and energy baselines are
  /// discarded.
  void start(Seconds t);

  /// End the measurement window. Reports keep the samples taken so far;
  /// sample_at calls after stop() are ignored (the driver's sampling loop
  /// may outlive the window — e.g. a GUI that keeps polling after
  /// POWER_STOP — and must not pollute the closed report).
  void stop();

  /// Measuring right now (start()ed and not yet stop()ped/reset()).
  bool running() const {
    util::MutexLock lock(mutex_);
    return running_;
  }

  /// Take one reading on every channel for the cycle ending at time t.
  /// Throws if the analyzer was never started; silently ignored when the
  /// window was closed with stop().
  void sample_at(Seconds t);

  /// Convenience: schedule per-cycle sampling events on `sim` over
  /// [t_start, t_end]. The caller still runs the simulator.
  void schedule_sampling(sim::Simulator& sim, Seconds t_start, Seconds t_end);

  std::size_t channel_count() const {
    util::MutexLock lock(mutex_);
    return channels_.size();
  }

  /// Reference into this analyzer's channel state. Stable only while no
  /// window is open: read reports after stop() (a concurrent sample_at
  /// would be appending to the vector behind the reference).
  const ChannelReport& report(std::size_t channel) const;

  /// Clear all recorded samples; keeps channels and calibration.
  void reset();

 private:
  struct Channel {
    PowerSource* source;
    HallSensor sensor;
    ChannelReport report;
    Joules energy_at_start = 0.0;
    Joules last_energy = 0.0;
  };

  Seconds cycle_;  ///< immutable after construction
  HallSensorParams sensor_params_;  ///< immutable after construction
  /// Window state below is guarded: the driver loop that ticks sample_at
  /// and the control path that calls stop()/reset() may be different
  /// threads (POWER_STOP arrives over the messenger while the sampling
  /// loop is still running), so stop-vs-tick must serialise.
  mutable util::Mutex mutex_;
  util::Rng seed_rng_ TRACER_GUARDED_BY(mutex_);
  Seconds started_at_ TRACER_GUARDED_BY(mutex_) = 0.0;
  Seconds last_sample_ TRACER_GUARDED_BY(mutex_) = 0.0;
  bool running_ TRACER_GUARDED_BY(mutex_) = false;
  /// start()ed then stop()ped (window closed).
  bool stopped_ TRACER_GUARDED_BY(mutex_) = false;
  std::vector<Channel> channels_ TRACER_GUARDED_BY(mutex_);
};

}  // namespace tracer::power
