#include "storage/diskspec.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace tracer::storage {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("diskspec: line " + std::to_string(line) + ": " +
                           what);
}

using Setter = std::function<void(HddParams&, double)>;

const std::map<std::string, Setter>& key_table() {
  static const std::map<std::string, Setter> kTable = {
      {"capacity_gb",
       [](HddParams& p, double v) {
         p.capacity = static_cast<Bytes>(v * 1e9);
       }},
      {"rpm", [](HddParams& p, double v) { p.rpm = v; }},
      {"cylinders",
       [](HddParams& p, double v) {
         p.cylinders = static_cast<std::uint64_t>(v);
       }},
      {"track_to_track_ms",
       [](HddParams& p, double v) { p.track_to_track_seek = v * 1e-3; }},
      {"full_stroke_ms",
       [](HddParams& p, double v) { p.full_stroke_seek = v * 1e-3; }},
      {"settle_ms", [](HddParams& p, double v) { p.settle_time = v * 1e-3; }},
      {"command_overhead_ms",
       [](HddParams& p, double v) { p.command_overhead = v * 1e-3; }},
      {"outer_rate_mbps",
       [](HddParams& p, double v) { p.outer_rate_mbps = v; }},
      {"inner_rate_mbps",
       [](HddParams& p, double v) { p.inner_rate_mbps = v; }},
      {"idle_watts", [](HddParams& p, double v) { p.idle_watts = v; }},
      {"seek_watts", [](HddParams& p, double v) { p.seek_extra_watts = v; }},
      {"transfer_watts",
       [](HddParams& p, double v) { p.transfer_extra_watts = v; }},
      {"write_watts",
       [](HddParams& p, double v) { p.write_extra_watts = v; }},
      {"standby_watts",
       [](HddParams& p, double v) { p.standby_watts = v; }},
      {"spin_up_s", [](HddParams& p, double v) { p.spin_up_time = v; }},
      {"spin_up_watts",
       [](HddParams& p, double v) { p.spin_up_extra_watts = v; }},
  };
  return kTable;
}

void validate(const std::string& name, const HddParams& params,
              std::size_t line) {
  if (params.capacity == 0) fail(line, name + ": capacity must be > 0");
  if (!(params.rpm > 0.0)) fail(line, name + ": rpm must be > 0");
  if (params.cylinders == 0) fail(line, name + ": cylinders must be > 0");
  if (!(params.outer_rate_mbps > 0.0) || !(params.inner_rate_mbps > 0.0)) {
    fail(line, name + ": media rates must be > 0");
  }
  if (params.full_stroke_seek < params.track_to_track_seek) {
    fail(line, name + ": full stroke seek below track-to-track");
  }
  if (params.idle_watts < 0.0 || params.standby_watts < 0.0) {
    fail(line, name + ": negative power");
  }
}

}  // namespace

std::map<std::string, HddParams> parse_diskspecs(std::string_view text) {
  std::map<std::string, HddParams> specs;
  const auto lines = util::split(text, '\n');

  std::size_t line_no = 0;
  bool saw_header = false;
  bool in_block = false;
  std::string current_name;
  std::size_t block_start_line = 0;
  HddParams current;

  for (const auto& raw : lines) {
    ++line_no;
    std::string_view line = util::trim(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = util::trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != "tracer_diskspecs v1") {
        fail(line_no, "expected header 'tracer_diskspecs v1'");
      }
      saw_header = true;
      continue;
    }

    if (!in_block) {
      const auto tokens = util::split_whitespace(line);
      if (tokens.size() != 3 || tokens[0] != "disk" || tokens[2] != "{") {
        fail(line_no, "expected 'disk <name> {'");
      }
      if (specs.count(tokens[1]) != 0) {
        fail(line_no, "duplicate disk '" + tokens[1] + "'");
      }
      in_block = true;
      current_name = tokens[1];
      block_start_line = line_no;
      current = HddParams{};
      current.name = current_name;
      continue;
    }

    if (line == "}") {
      validate(current_name, current, block_start_line);
      specs.emplace(current_name, current);
      in_block = false;
      continue;
    }

    const auto tokens = util::split_whitespace(line);
    if (tokens.size() != 2) {
      fail(line_no, "expected '<key> <value>'");
    }
    const auto it = key_table().find(tokens[0]);
    if (it == key_table().end()) {
      fail(line_no, "unknown key '" + tokens[0] + "'");
    }
    double value = 0.0;
    if (!util::parse_double(tokens[1], value)) {
      fail(line_no, "bad value '" + tokens[1] + "'");
    }
    it->second(current, value);
  }

  if (in_block) fail(line_no, "unterminated disk block");
  if (!saw_header) fail(line_no, "empty spec (missing header)");
  if (specs.empty()) fail(line_no, "empty spec: no disk blocks");
  return specs;
}

std::map<std::string, HddParams> load_diskspecs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("diskspec: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_diskspecs(buffer.str());
}

std::string format_diskspec(const std::string& name,
                            const HddParams& params) {
  std::string out = "tracer_diskspecs v1\n\ndisk " + name + " {\n";
  out += util::format("  capacity_gb        %.3f\n",
                      static_cast<double>(params.capacity) / 1e9);
  out += util::format("  rpm                %.0f\n", params.rpm);
  out += util::format("  cylinders          %llu\n",
                      static_cast<unsigned long long>(params.cylinders));
  out += util::format("  track_to_track_ms  %.3f\n",
                      params.track_to_track_seek * 1e3);
  out += util::format("  full_stroke_ms     %.3f\n",
                      params.full_stroke_seek * 1e3);
  out += util::format("  settle_ms          %.3f\n", params.settle_time * 1e3);
  out += util::format("  command_overhead_ms %.3f\n",
                      params.command_overhead * 1e3);
  out += util::format("  outer_rate_mbps    %.1f\n", params.outer_rate_mbps);
  out += util::format("  inner_rate_mbps    %.1f\n", params.inner_rate_mbps);
  out += util::format("  idle_watts         %.2f\n", params.idle_watts);
  out += util::format("  seek_watts         %.2f\n", params.seek_extra_watts);
  out += util::format("  transfer_watts     %.2f\n",
                      params.transfer_extra_watts);
  out += util::format("  write_watts        %.2f\n",
                      params.write_extra_watts);
  out += util::format("  standby_watts      %.2f\n", params.standby_watts);
  out += util::format("  spin_up_s          %.2f\n", params.spin_up_time);
  out += util::format("  spin_up_watts      %.2f\n",
                      params.spin_up_extra_watts);
  out += "}\n";
  return out;
}

}  // namespace tracer::storage
