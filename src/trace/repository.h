// Trace repository (§III-A2): a directory of .replay files whose names
// encode the collection parameters — "the name of each trace file implies
// important information such as storage device type, request size, random
// rate, and read rate".
//
// Naming scheme:  <device>_rs<size>_rnd<pct>_rd<pct>.replay
// e.g.            raid5-hdd6_rs4K_rnd50_rd0.replay
//
// The encoding is a verified bijection: file_name() parses its own output
// back and throws std::invalid_argument when the key does not survive the
// round trip (empty device, path separators, out-of-range percents), so a
// stored trace can never become unlistable or come back under a different
// key.
//
// Entries may additionally exist in the columnar v2 format (".replay2",
// same stem) for bounded-memory streamed replay; the two formats hold the
// same trace and convert losslessly in either direction.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace tracer::trace {

class TraceSource;

/// The parameters a repository file name encodes.
struct TraceKey {
  std::string device;       ///< storage device type label
  Bytes request_size = 0;   ///< nominal request size
  int random_pct = 0;       ///< random ratio, percent 0..100
  int read_pct = 0;         ///< read ratio, percent 0..100

  /// Encode as a v1 file name. Throws std::invalid_argument when the key
  /// cannot round-trip through parse() (verified on every call).
  std::string file_name() const;
  /// Same stem with the columnar ".replay2" extension.
  std::string columnar_file_name() const;
  /// Parse a file name produced by file_name(); nullopt when it does not
  /// follow the scheme (foreign files in the directory are skipped, not
  /// errors).
  static std::optional<TraceKey> parse(const std::string& file_name);

  friend bool operator==(const TraceKey&, const TraceKey&) = default;
};

class TraceRepository {
 public:
  /// Opens (and creates if needed) the repository directory.
  explicit TraceRepository(std::filesystem::path directory);

  const std::filesystem::path& directory() const { return directory_; }

  /// Store a trace under its key; overwrites an existing entry.
  void store(const TraceKey& key, const Trace& trace) const;

  /// Store in the columnar v2 format (same key, ".replay2" extension).
  void store_columnar(const TraceKey& key, const Trace& trace) const;

  bool contains(const TraceKey& key) const;
  bool contains_columnar(const TraceKey& key) const;

  /// Load a trace; throws std::runtime_error when missing or corrupt.
  /// Reads whichever format is present (v1 preferred when both exist).
  Trace load(const TraceKey& key) const;

  /// Open the entry as a streaming TraceSource: the columnar entry when
  /// present (bounded-memory window decode), otherwise the v1 trace loaded
  /// into memory. Throws std::runtime_error when the key is absent.
  std::shared_ptr<const TraceSource> load_source(const TraceKey& key) const;

  /// Convert the v1 entry to columnar in place (bounded memory); returns
  /// the number of bunches converted. No-op when the columnar entry
  /// already exists, unless `overwrite`.
  std::uint64_t convert_to_columnar(const TraceKey& key,
                                    bool overwrite = false) const;

  /// Convert the columnar entry back to v1 (bounded memory).
  std::uint64_t convert_to_blk(const TraceKey& key,
                               bool overwrite = false) const;

  /// All keys present, sorted by file name (deterministic sweeps). Keys
  /// with only a columnar entry are included.
  std::vector<TraceKey> list() const;

  std::filesystem::path path_for(const TraceKey& key) const;
  std::filesystem::path columnar_path_for(const TraceKey& key) const;

 private:
  std::filesystem::path directory_;
};

}  // namespace tracer::trace
