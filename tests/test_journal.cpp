// Crash-safety regression tests for the checksummed campaign journal
// (docs/FLEET.md): per-row FNV-1a checksums, truncate-to-last-valid-row
// recovery at EVERY possible tear point, bit-flip detection at every byte
// of the last record, legacy-row compatibility, and the JournalMerger dedup
// used by the fleet coordinator.
#include "db/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace tracer::db {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tracer_journal_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const char* name = "journal.csv") const {
    return dir_ / name;
  }

  fs::path dir_;
};

TestRecord make_record(std::uint64_t id) {
  TestRecord r;
  r.test_id = id;
  r.timestamp = "2026-08-08T12:00:00";
  r.device = "raid5-hdd6";
  r.trace_name = "trace_" + std::to_string(id);
  r.request_size = 4096 + id;
  r.random_ratio = 0.5;
  r.read_ratio = 0.67;
  r.load_proportion = 0.25 + 0.0001 * static_cast<double>(id);
  r.avg_amps = 1.25;
  r.avg_volts = 12.0;
  r.avg_watts = 15.0;
  r.joules = 450.0;
  r.power_valid = id % 2 == 0;
  r.iops = 1000.0 + static_cast<double>(id);
  r.mbps = 80.5;
  r.avg_response_ms = 3.125;
  r.iops_per_watt = 66.7;
  r.mbps_per_kilowatt = 5366.0;
  return r;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST_F(JournalTest, RoundTripsRecordsThroughChecksummedRows) {
  {
    CampaignJournal journal(path());
    EXPECT_FALSE(journal.recovery().recovered());
    for (int i = 0; i < 5; ++i) journal.append(make_record(i));
  }
  const auto rows = CampaignJournal::load(path());
  ASSERT_EQ(rows.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i].test_id, i);
    EXPECT_EQ(rows[i].trace_name, "trace_" + std::to_string(i));
    EXPECT_EQ(rows[i].power_valid, i % 2 == 0);
  }
}

// The core crash-safety property: a process killed mid-append tears the
// file at an arbitrary byte. For EVERY tear point inside the last record,
// reopening must recover to exactly the previous records and stay
// appendable.
TEST_F(JournalTest, RecoversFromTruncationAtEveryByteOfLastRecord) {
  std::uint64_t before = 0;
  {
    CampaignJournal journal(path());
    for (int i = 0; i < 3; ++i) journal.append(make_record(i));
    before = fs::file_size(path());
    journal.append(make_record(3));
  }
  const std::uint64_t after = fs::file_size(path());
  const std::string full = read_file(path());
  ASSERT_GT(after, before);

  for (std::uint64_t cut = before; cut < after; ++cut) {
    const fs::path p = path("torn.csv");
    write_file(p, full.substr(0, cut));
    {
      CampaignJournal reopened(p);
      if (cut == before) {
        // Tear landed exactly on the previous row boundary: nothing to do.
        EXPECT_FALSE(reopened.recovery().recovered()) << "cut=" << cut;
      } else {
        EXPECT_TRUE(reopened.recovery().recovered()) << "cut=" << cut;
        EXPECT_EQ(reopened.recovery().truncated_bytes, cut - before)
            << "cut=" << cut;
      }
      auto rows = CampaignJournal::load(p);
      ASSERT_EQ(rows.size(), 3u) << "cut=" << cut;
      EXPECT_EQ(rows.back().test_id, 2u) << "cut=" << cut;
      // The recovered journal must remain appendable at the right offset.
      reopened.append(make_record(99));
    }
    auto rows = CampaignJournal::load(p);
    ASSERT_EQ(rows.size(), 4u) << "cut=" << cut;
    EXPECT_EQ(rows.back().test_id, 99u) << "cut=" << cut;
  }
}

// A bit flip anywhere in the last record (data, checksum column, or its
// newline) must fail validation and be cut off by recovery — FNV-1a over
// the whole line leaves no unprotected byte.
TEST_F(JournalTest, DetectsBitFlipAtEveryByteOfLastRecord) {
  std::uint64_t before = 0;
  {
    CampaignJournal journal(path());
    for (int i = 0; i < 3; ++i) journal.append(make_record(i));
    before = fs::file_size(path());
    journal.append(make_record(3));
  }
  const std::string full = read_file(path());

  for (std::size_t offset = before; offset < full.size(); ++offset) {
    const fs::path p = path("flipped.csv");
    std::string damaged = full;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x10);
    write_file(p, damaged);
    CampaignJournal reopened(p);
    EXPECT_TRUE(reopened.recovery().recovered()) << "offset=" << offset;
    auto rows = CampaignJournal::load(p);
    ASSERT_EQ(rows.size(), 3u) << "offset=" << offset;
    EXPECT_EQ(rows.back().test_id, 2u) << "offset=" << offset;
  }
}

// Damage in the MIDDLE invalidates everything after it: append-only row
// boundaries downstream of a corrupt byte cannot be trusted, so recovery is
// a prefix property.
TEST_F(JournalTest, MidFileDamageCutsEverythingAfterIt) {
  {
    CampaignJournal journal(path());
    for (int i = 0; i < 4; ++i) journal.append(make_record(i));
  }
  std::string bytes = read_file(path());
  // Find the second record row and flip a byte inside it.
  std::size_t line_start = 0;
  for (int skipped = 0; skipped < 2; ++skipped) {  // header + record 0
    line_start = bytes.find('\n', line_start) + 1;
  }
  bytes[line_start + 5] = static_cast<char>(bytes[line_start + 5] ^ 0x01);
  write_file(path(), bytes);

  CampaignJournal reopened(path());
  EXPECT_TRUE(reopened.recovery().recovered());
  EXPECT_EQ(reopened.recovery().dropped_rows, 3u);
  auto rows = CampaignJournal::load(path());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].test_id, 0u);
}

TEST_F(JournalTest, LegacyRowsWithoutChecksumStillLoad) {
  // A journal written before the checksum column existed: 18 fields, no
  // row_checksum. It must load, and recovery must keep it.
  const std::string header =
      "test_id,timestamp,device,trace,request_size,random_ratio,read_ratio,"
      "load_proportion,avg_amps,avg_volts,avg_watts,joules,iops,mbps,"
      "avg_response_ms,iops_per_watt,mbps_per_kilowatt,power_valid\n";
  const std::string legacy =
      "7,2025-01-01T00:00:00,hdd,old_trace,4096,0.5000,0.5000,0.2500,"
      "1.0000,12.00,12.000,360.000,100.00,0.800,5.000,8.3333,66.667,1\n";
  write_file(path(), header + legacy);

  CampaignJournal reopened(path());
  EXPECT_FALSE(reopened.recovery().recovered());
  auto rows = CampaignJournal::load(path());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].test_id, 7u);
  EXPECT_EQ(rows[0].trace_name, "old_trace");
  EXPECT_TRUE(rows[0].power_valid);

  // New rows appended after legacy ones carry checksums and verify.
  reopened.append(make_record(8));
  rows = CampaignJournal::load(path());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].test_id, 8u);
}

TEST_F(JournalTest, RefusesFieldsThatWouldBreakLineRecovery) {
  CampaignJournal journal(path());
  TestRecord bad = make_record(0);
  bad.device = "evil\ndevice";
  EXPECT_THROW(journal.append(bad), std::invalid_argument);
  bad = make_record(0);
  bad.trace_name = "evil\rtrace";
  EXPECT_THROW(journal.append(bad), std::invalid_argument);
  EXPECT_TRUE(CampaignJournal::load(path()).empty());
}

TEST_F(JournalTest, MergerDedupsByTestId) {
  JournalMerger merger(path());
  EXPECT_TRUE(merger.append_unique(make_record(1)));
  EXPECT_TRUE(merger.append_unique(make_record(2)));
  // Same test re-executed by a stolen shard: rejected, nothing written.
  EXPECT_FALSE(merger.append_unique(make_record(1)));
  EXPECT_EQ(merger.merged(), 2u);
  EXPECT_EQ(merger.deduped(), 1u);
  EXPECT_EQ(CampaignJournal::load(path()).size(), 2u);
}

TEST_F(JournalTest, MergerResumesSeenSetFromJournal) {
  {
    JournalMerger merger(path());
    merger.append_unique(make_record(1));
    merger.append_unique(make_record(2));
  }
  // A restarted coordinator re-opens the journal: already-merged tests are
  // known, new ones append.
  JournalMerger resumed(path());
  EXPECT_EQ(resumed.loaded().size(), 2u);
  EXPECT_TRUE(resumed.contains(1));
  EXPECT_TRUE(resumed.contains(2));
  EXPECT_FALSE(resumed.append_unique(make_record(2)));
  EXPECT_TRUE(resumed.append_unique(make_record(3)));
  EXPECT_EQ(resumed.size(), 3u);
  EXPECT_EQ(CampaignJournal::load(path()).size(), 3u);
}

// Fail-pre-fix regression (tracer-lossless-double-format audit): rows were
// encoded at display precision (%.4f / %.3f / %.2f), so a record loaded on
// resume differed from the one measured before the crash — the PR 9 %.9g
// wire bug one layer down. Every double field must survive the journal
// round trip bit-exactly.
TEST_F(JournalTest, AppendLoadRoundTripsDoublesBitExactly) {
  TestRecord r = make_record(1);
  r.random_ratio = 1.0 / 3.0;
  r.read_ratio = 0.1 + 0.2;  // 0.30000000000000004
  r.load_proportion = 0.1234567890123456;
  r.avg_amps = 1.25e-7;  // below the old %.4f floor: was stored as 0.0000
  r.avg_volts = 219.99999999999997;
  r.avg_watts = 3.141592653589793;
  r.joules = 123.45678912345678;
  r.iops = 99999.000000001;
  r.mbps = 2.2250738585072014e-308;  // smallest normal double
  r.avg_response_ms = 0.0001220703125;
  r.iops_per_watt = 1.7976931348623157e308;  // largest finite double
  r.mbps_per_kilowatt = 5366.000000000001;
  {
    CampaignJournal journal(path());
    journal.append(r);
  }
  const auto loaded = CampaignJournal::load(path());
  ASSERT_EQ(loaded.size(), 1u);
  const TestRecord& l = loaded[0];
  EXPECT_EQ(l.random_ratio, r.random_ratio);
  EXPECT_EQ(l.read_ratio, r.read_ratio);
  EXPECT_EQ(l.load_proportion, r.load_proportion);
  EXPECT_EQ(l.avg_amps, r.avg_amps);
  EXPECT_EQ(l.avg_volts, r.avg_volts);
  EXPECT_EQ(l.avg_watts, r.avg_watts);
  EXPECT_EQ(l.joules, r.joules);
  EXPECT_EQ(l.iops, r.iops);
  EXPECT_EQ(l.mbps, r.mbps);
  EXPECT_EQ(l.avg_response_ms, r.avg_response_ms);
  EXPECT_EQ(l.iops_per_watt, r.iops_per_watt);
  EXPECT_EQ(l.mbps_per_kilowatt, r.mbps_per_kilowatt);
}

// Fail-pre-fix regression: the %.4f resume key folded loads closer than
// 5e-5 into the same key, so two distinct planned tests aliased each
// other's journal rows and one of them was silently never run.
TEST_F(JournalTest, KeySeparatesLoadsCloserThanLegacyPrecision) {
  EXPECT_NE(CampaignJournal::key("t", 0.12341),
            CampaignJournal::key("t", 0.12344));
  EXPECT_EQ(CampaignJournal::key("t", 0.12341),
            CampaignJournal::key("t", 0.12341));
}

// The key must also be stable across the journal round trip: a resumed
// campaign recomputes keys from *loaded* records and matches them against
// keys computed from *planned* (in-memory) doubles.
TEST_F(JournalTest, KeyStableAcrossJournalRoundTrip) {
  TestRecord r = make_record(7);
  r.load_proportion = 1.0 / 3.0;
  {
    CampaignJournal journal(path());
    journal.append(r);
  }
  const auto loaded = CampaignJournal::load(path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(CampaignJournal::key(r.trace_name, r.load_proportion),
            CampaignJournal::key(loaded[0].trace_name,
                                 loaded[0].load_proportion));
}

}  // namespace
}  // namespace tracer::db
