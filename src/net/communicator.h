// Communicator (§III-A1): moves typed Messages over an Endpoint, assigning
// sequence numbers and matching replies to requests. Both the evaluation
// host and the workload generator own one.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "net/channel.h"
#include "net/message.h"

namespace tracer::net {

class Communicator {
 public:
  /// Out-of-band frames that arrive while request() waits are stashed for
  /// poll(); the stash is bounded by `stash_capacity` (a long test streams
  /// one PROGRESS frame per sampling cycle — hours of them must not grow
  /// memory without bound). When full, the oldest stashed frame is dropped
  /// and counted on obs' "net.stash.dropped"; the newest frames survive,
  /// since a live display only cares about the most recent progress.
  explicit Communicator(Endpoint endpoint, std::size_t stash_capacity = 256)
      : endpoint_(std::move(endpoint)), stash_capacity_(stash_capacity) {}

  /// Fire-and-forget send; stamps and returns the sequence number.
  std::uint32_t send(Message message);

  /// Out-of-band send: the message keeps its sequence (0 = unsolicited
  /// stream frame, e.g. PROGRESS), so it can never be mistaken for a
  /// request's reply.
  void send_oob(const Message& message);

  /// Non-blocking receive of the next inbound message.
  std::optional<Message> poll();

  /// Blocking receive with timeout.
  std::optional<Message> recv(Seconds timeout);

  /// Send a request and wait for the message that echoes its sequence
  /// number. Other messages arriving meanwhile are queued for poll(), up
  /// to the stash bound (oldest dropped first).
  std::optional<Message> request(Message message, Seconds timeout);

  /// Reply to `request` with `reply` (copies the sequence number over).
  void reply(const Message& request, Message reply);

  std::size_t stash_size() const { return stash_.size(); }
  std::size_t stash_capacity() const { return stash_capacity_; }
  /// Frames evicted from this communicator's stash since construction.
  std::uint64_t stash_dropped() const { return stash_dropped_; }

  void close() { endpoint_.close(); }

 private:
  void stash_push(Message message);

  Endpoint endpoint_;
  std::uint32_t next_sequence_ = 1;
  std::size_t stash_capacity_;
  std::uint64_t stash_dropped_ = 0;
  std::deque<Message> stash_;  ///< out-of-band messages seen during request()
};

}  // namespace tracer::net
