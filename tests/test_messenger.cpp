#include "net/messenger.h"

#include <gtest/gtest.h>

#include "power/power_timeline.h"

namespace tracer::net {
namespace {

class FakeSource final : public power::PowerSource {
 public:
  explicit FakeSource(Watts base) : timeline_(base) {}
  std::string name() const override { return "fake-array"; }
  Watts power_at(Seconds t) const override { return timeline_.power_at(t); }
  Joules energy_until(Seconds t) override { return timeline_.energy_until(t); }

 private:
  power::PowerTimeline timeline_;
};

power::HallSensorParams perfect_sensor() {
  power::HallSensorParams params;
  params.noise_relative = 0.0;
  params.gain_sigma = 0.0;
  params.offset_watts = 0.0;
  params.quantum_watts = 0.0;
  params.voltage_ripple = 0.0;
  return params;
}

Message command(MessageType type, std::uint32_t sequence) {
  Message message;
  message.type = type;
  message.sequence = sequence;
  return message;
}

TEST(Messenger, StartBeforeInitIsRejected) {
  FakeSource source(50.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  const Message reply = messenger.handle(command(MessageType::kPowerStart, 1),
                                         /*now=*/0.0);
  EXPECT_EQ(reply.type, MessageType::kError);
}

TEST(Messenger, InitStartStopFlowReportsPower) {
  FakeSource source(50.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);

  EXPECT_EQ(messenger.handle(command(MessageType::kPowerInit, 1), 0.0).type,
            MessageType::kAck);
  EXPECT_EQ(messenger.handle(command(MessageType::kPowerStart, 2), 0.0).type,
            MessageType::kAck);
  for (int t = 1; t <= 5; ++t) analyzer.sample_at(t);
  const Message result =
      messenger.handle(command(MessageType::kPowerStop, 3), 5.0);
  EXPECT_EQ(result.type, MessageType::kPowerResult);
  EXPECT_EQ(result.sequence, 3u);
  EXPECT_EQ(*result.get_u64("channels"), 1u);
  EXPECT_EQ(*result.get("ch0.name"), "fake-array");
  EXPECT_NEAR(*result.get_double("ch0.watts"), 50.0, 1e-6);
  EXPECT_NEAR(*result.get_double("ch0.joules"), 250.0, 1e-6);
  EXPECT_NEAR(*result.get_double("ch0.volts"), 220.0, 1e-6);
  EXPECT_NEAR(*result.get_double("ch0.amps"), 50.0 / 220.0, 1e-6);
  EXPECT_EQ(*result.get_u64("ch0.samples"), 5u);
}

TEST(Messenger, MultiChannelResult) {
  FakeSource a(10.0);
  FakeSource b(20.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(a);
  analyzer.add_channel(b);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);
  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  analyzer.sample_at(1.0);
  const Message result =
      messenger.handle(command(MessageType::kPowerStop, 3), 1.0);
  EXPECT_EQ(*result.get_u64("channels"), 2u);
  EXPECT_NEAR(*result.get_double("ch0.watts"), 10.0, 1e-6);
  EXPECT_NEAR(*result.get_double("ch1.watts"), 20.0, 1e-6);
}

TEST(Messenger, UnsupportedCommandIsError) {
  FakeSource source(1.0);
  power::PowerAnalyzer analyzer(1.0);
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  const Message reply =
      messenger.handle(command(MessageType::kConfigureTest, 4), 0.0);
  EXPECT_EQ(reply.type, MessageType::kError);
  EXPECT_NE(reply.get("reason")->find("CONFIGURE_TEST"), std::string::npos);
}

TEST(Messenger, InitResetsPriorRun) {
  FakeSource source(30.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);
  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  analyzer.sample_at(1.0);
  messenger.handle(command(MessageType::kPowerInit, 3), 1.0);  // reset
  messenger.handle(command(MessageType::kPowerStart, 4), 1.0);
  analyzer.sample_at(2.0);
  const Message result =
      messenger.handle(command(MessageType::kPowerStop, 5), 2.0);
  EXPECT_EQ(*result.get_u64("ch0.samples"), 1u);
}

// Regression: STOP never ended the measurement window, so (a) a second
// STOP without a START quietly returned another report, and (b) driver
// sample ticks arriving after STOP polluted the next report. STOP now
// closes the window; START opens a clean one.
TEST(Messenger, SecondStopWithoutStartIsError) {
  FakeSource source(40.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);
  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  analyzer.sample_at(1.0);
  EXPECT_EQ(messenger.handle(command(MessageType::kPowerStop, 3), 1.0).type,
            MessageType::kPowerResult);
  const Message again = messenger.handle(command(MessageType::kPowerStop, 4),
                                         2.0);
  EXPECT_EQ(again.type, MessageType::kError);
  EXPECT_NE(again.get("reason")->find("not running"), std::string::npos);
}

TEST(Messenger, SamplesAfterStopAreIgnored) {
  FakeSource source(40.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);
  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  analyzer.sample_at(1.0);
  messenger.handle(command(MessageType::kPowerStop, 3), 1.0);
  // The driver's sampling loop lags the STOP; pre-fix this threw or (after
  // a later START) leaked into the next window. It must be a silent no-op.
  analyzer.sample_at(2.0);
  analyzer.sample_at(3.0);
  EXPECT_EQ(analyzer.report(0).samples.size(), 1u);
}

TEST(Messenger, StartStopStartWindowsAreIsolated) {
  FakeSource source(40.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);

  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  for (int t = 1; t <= 4; ++t) analyzer.sample_at(t);
  const Message first =
      messenger.handle(command(MessageType::kPowerStop, 3), 4.0);
  EXPECT_EQ(*first.get_u64("ch0.samples"), 4u);

  // Second window without re-INIT: must start clean, not inherit the four
  // samples (or the stray post-STOP tick) from the first window.
  analyzer.sample_at(5.0);  // stray driver tick between windows
  messenger.handle(command(MessageType::kPowerStart, 4), 6.0);
  analyzer.sample_at(7.0);
  const Message second =
      messenger.handle(command(MessageType::kPowerStop, 5), 7.0);
  EXPECT_EQ(second.type, MessageType::kPowerResult);
  EXPECT_EQ(*second.get_u64("ch0.samples"), 1u);
  EXPECT_NEAR(*second.get_double("ch0.watts"), 40.0, 1e-6);
}

TEST(Messenger, DoubleStartIsError) {
  FakeSource source(40.0);
  power::PowerAnalyzer analyzer(1.0, perfect_sensor());
  analyzer.add_channel(source);
  Messenger messenger(analyzer);
  messenger.handle(command(MessageType::kPowerInit, 1), 0.0);
  messenger.handle(command(MessageType::kPowerStart, 2), 0.0);
  const Message again =
      messenger.handle(command(MessageType::kPowerStart, 3), 1.0);
  EXPECT_EQ(again.type, MessageType::kError);
  EXPECT_NE(again.get("reason")->find("already running"), std::string::npos);
}

}  // namespace
}  // namespace tracer::net
