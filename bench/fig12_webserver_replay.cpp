// Fig 12: average throughput (IOPS, MBPS) of the RAID-5 array during a
// 30-minute replay of the web-server trace at load proportions 20 %..100 %.
// Paper finding: "the I/O workload trend remains unchanged when the load
// proportion is reduced" — the per-interval series at reduced load is a
// scaled copy of the full-load series.
#include "bench_common.h"

#include "core/proportional_filter.h"
#include "core/replay_engine.h"
#include "storage/disk_array.h"
#include "util/stats.h"
#include "workload/web_server_model.h"

int main() {
  using namespace tracer;
  bench::print_header(
      "Fig 12 — web-server trace replay at 20..100 % load (30 min)",
      "per-interval throughput shape is preserved under load scaling");

  workload::WebServerParams params;  // 30-minute Table III-matched trace
  workload::WebServerModel model(params);
  const trace::Trace web = model.generate();
  std::printf("trace: %zu bunches, %llu packages, %.0f s\n", web.bunch_count(),
              static_cast<unsigned long long>(web.package_count()),
              web.duration());

  // Per-minute interval series, like the paper's one-minute recording.
  const Seconds interval = 60.0;
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<std::vector<double>> iops_series;
  std::vector<double> mean_iops;
  std::vector<double> mean_mbps;
  for (double load : loads) {
    const trace::Trace filtered =
        load >= 1.0 ? web : core::ProportionalFilter::apply(web, load);
    core::ReplayOptions options;
    options.sampling_cycle = interval;
    core::ReplayEngine engine(options);
    storage::DiskArray array(engine.simulator(),
                             storage::ArrayConfig::hdd_testbed(6));
    const core::ReplayReport report = engine.replay(filtered, array);
    if (report.late_schedules != 0) {
      // A late schedule means the DES clamped an event into the present —
      // the replayed timing silently drifted. Figure data would be invalid.
      std::fprintf(stderr, "FATAL: %llu late schedules at load %.0f %%\n",
                   static_cast<unsigned long long>(report.late_schedules),
                   load * 100.0);
      return 1;
    }
    iops_series.push_back(report.perf.iops_series);
    mean_iops.push_back(report.perf.iops);
    mean_mbps.push_back(report.perf.mbps);
  }

  // Print the per-minute IOPS series side by side.
  util::Table table({"minute", "20%", "40%", "60%", "80%", "100%"});
  const std::size_t minutes = iops_series.back().size();
  for (std::size_t m = 0; m < minutes; ++m) {
    auto row = table.row();
    row.add(static_cast<std::uint64_t>(m + 1));
    for (const auto& series : iops_series) {
      row.add(m < series.size() ? series[m] : 0.0, 1);
    }
    row.done();
  }
  table.print(std::cout);

  std::printf("\nmean IOPS:");
  for (double v : mean_iops) std::printf(" %.1f", v);
  std::printf("\nmean MBPS:");
  for (double v : mean_mbps) std::printf(" %.2f", v);
  std::printf("\n");

  // Shape preservation: each reduced-load per-minute series correlates
  // strongly with the 100 % series.
  bool shape_ok = true;
  for (std::size_t i = 0; i + 1 < loads.size(); ++i) {
    std::vector<double> a = iops_series[i];
    std::vector<double> b = iops_series.back();
    const std::size_t n = std::min(a.size(), b.size());
    a.resize(n);
    b.resize(n);
    const double r = util::pearson_correlation(a, b);
    std::printf("corr(%.0f%%, 100%%) = %.4f\n", loads[i] * 100.0, r);
    if (r < 0.95) shape_ok = false;
  }
  bench::print_verdict(shape_ok,
                       "workload trend unchanged across load proportions "
                       "(per-minute correlation > 0.95)");
  return 0;
}
