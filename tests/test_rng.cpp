#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tracer::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next());
  rng.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 9.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Rng, BelowCoversFullRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < 200000; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / 200000.0, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoMinimumAndMean) {
  Rng rng(37);
  // alpha=2, xm=1 -> mean = alpha*xm/(alpha-1) = 2.
  double sum = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.pareto(2.0, 1.0);
    ASSERT_GE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(41);
  Rng split = rng.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (rng.next() == split.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(43);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace tracer::util
