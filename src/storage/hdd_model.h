// Mechanical hard-disk model calibrated to the testbed's Seagate Barracuda
// 7200.12 500 GB drives (Table II).
//
// Service model: FIFO (or LOOK) single-actuator service. A request pays
//   seek(cylinder distance) + rotational latency + zoned media transfer,
// with sequential hits (next sector after the previous request) streaming
// at media rate with neither seek nor rotation. Power: constant spindle/
// electronics base, an extra voice-coil pulse during seeks (the §VI-D
// mechanism behind the random-ratio results), and an extra during transfer.
#pragma once

#include <deque>
#include <string>

#include "power/power_timeline.h"
#include "storage/block_device.h"
#include "storage/mech_types.h"
#include "util/rng.h"

namespace tracer::storage {

struct HddParams {
  std::string name = "seagate-7200.12";
  Bytes capacity = 500ULL * 1000 * 1000 * 1000;  // marketing GB, like the SKU
  double rpm = 7200.0;
  std::uint64_t cylinders = 100000;
  Seconds track_to_track_seek = 1.0e-3;
  Seconds full_stroke_seek = 15.0e-3;
  Seconds settle_time = 0.4e-3;        ///< same-cylinder non-sequential hit
  Seconds command_overhead = 0.10e-3;  ///< per-request controller time
  double outer_rate_mbps = 125.0;      ///< media rate at cylinder 0 (MB/s)
  double inner_rate_mbps = 60.0;       ///< media rate at the last cylinder
  Watts idle_watts = 8.0;              ///< spindle + electronics
  Watts seek_extra_watts = 4.5;        ///< voice coil during seeks
  Watts transfer_extra_watts = 2.2;    ///< head/channel during transfer
  Watts write_extra_watts = 0.6;       ///< added write current
  // Power-state support for energy-conservation techniques (MAID/PDC-style
  // spin-down, the §II comparison targets TRACER exists to evaluate).
  Watts standby_watts = 1.2;           ///< spun-down electronics only
  Seconds spin_up_time = 6.0;          ///< standby -> active latency
  Watts spin_up_extra_watts = 16.0;    ///< motor surge above idle while
                                       ///< spinning up
  /// Queue discipline: FIFO preserves trace-replay ordering exactly; LOOK
  /// models an elevator and is used by the scheduling ablation.
  enum class Discipline { kFifo, kLook } discipline = Discipline::kFifo;
};

class HddModel final : public BlockDevice {
 public:
  HddModel(sim::Simulator& sim, const HddParams& params, std::uint64_t seed);

  // BlockDevice
  Bytes capacity() const override { return params_.capacity; }
  void submit(const IoRequest& request, CompletionCallback done) override;
  std::size_t outstanding() const override {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  /// One in-service completion plus a possible spin-up timer.
  std::size_t max_concurrent_events() const override { return 2; }

  // PowerSource
  std::string name() const override { return params_.name; }
  Watts power_at(Seconds t) const override { return timeline_.power_at(t); }
  Joules energy_until(Seconds t) override { return timeline_.energy_until(t); }

  const HddParams& params() const { return params_; }

  /// Lifetime service statistics (used by tests and the trace collector).
  std::uint64_t completed_requests() const { return completed_; }
  std::uint64_t sequential_hits() const { return sequential_hits_; }
  Seconds busy_time() const { return busy_time_; }
  std::uint64_t spin_ups() const { return spin_ups_; }
  /// Time of the most recent submit or completion (idle-timeout policies).
  Seconds last_activity() const { return last_activity_; }

  // ---- Power management (spin-down energy-conservation support) ----

  enum class PowerState { kActive, kStandby, kSpinningUp };
  PowerState power_state() const { return power_state_; }

  /// Spin the platters down. Ignored while requests are queued or in
  /// service (a real drive rejects STANDBY IMMEDIATE mid-transfer).
  /// Returns true when the state changed.
  bool spin_down();

  /// Begin spinning up now (also triggered implicitly by I/O arrival).
  void spin_up();

 private:
  struct Pending {
    IoRequest request;
    CompletionCallback done;
    Seconds submit_time;
  };

  void start_next();
  std::uint64_t cylinder_of(Sector sector) const;
  std::deque<Pending>::iterator pick_next();

  HddParams params_;
  util::Rng rng_;
  power::PowerTimeline timeline_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  // Service mechanics are shared with the batch planners (mech_batch.h):
  // geometry is derived once, head/sequential state advances per request.
  HddMechGeometry geom_;
  HddMechState mech_;
  std::uint64_t completed_ = 0;
  std::uint64_t sequential_hits_ = 0;
  Seconds busy_time_ = 0.0;
  Seconds last_activity_ = 0.0;
  PowerState power_state_ = PowerState::kActive;
  std::uint64_t spin_ups_ = 0;
  std::uint64_t spin_up_epoch_ = 0;  ///< invalidates stale spin-up events
};

}  // namespace tracer::storage
