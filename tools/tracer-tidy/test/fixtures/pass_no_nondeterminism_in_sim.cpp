// Pass fixture for tracer-no-nondeterminism-in-sim: config-seeded engines
// and order-stable containers are the sanctioned tools. Must be silent.
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace tracer::util {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ = state_ * 6364136223846793005ULL + 1; }

 private:
  std::uint64_t state_;
};
}  // namespace tracer::util

int pick_victim_disk(tracer::util::Rng& rng, int disks) {
  return static_cast<int>(rng.next() % static_cast<std::uint64_t>(disks));
}

double jitter_service_time(std::uint64_t config_seed) {
  std::mt19937_64 engine(config_seed);  // explicit seed: reproducible
  return static_cast<double>(engine()) * 1e-9;
}

double total_queue_depth(const std::map<int, double>& per_disk,
                         const std::vector<double>& lanes) {
  double sum = 0.0;
  for (const auto& entry : per_disk) sum += entry.second;
  for (const double depth : lanes) sum += depth;
  return sum;
}
