#include "storage/cache_tier.h"

#include <gtest/gtest.h>

#include "storage/disk_array.h"
#include "storage/power_policy.h"

namespace tracer::storage {
namespace {

/// Scripted backing device: fixed service latency, zero standing draw, and
/// per-direction submit counters, so every cache decision is observable as
/// "did the media get touched".
class FakeBacking final : public BlockDevice {
 public:
  explicit FakeBacking(sim::Simulator& sim, Seconds latency = 0.01)
      : BlockDevice(sim), latency_(latency) {}

  Bytes capacity() const override { return kGiB; }

  void submit(const IoRequest& request, CompletionCallback done) override {
    ++(request.op == OpType::kRead ? reads_ : writes_);
    ++outstanding_;
    const Seconds now = sim_.now();
    sim_.schedule_in(latency_, [this, request, done = std::move(done), now] {
      --outstanding_;
      done(IoCompletion{request.id, now, now + latency_, request.bytes,
                        request.op});
    });
  }

  std::size_t outstanding() const override { return outstanding_; }
  std::string name() const override { return "fake"; }
  Watts power_at(Seconds) const override { return 0.0; }
  Joules energy_until(Seconds) override { return 0.0; }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  Seconds latency_;
  std::size_t outstanding_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

CacheTierParams small_cache(std::size_t lines) {
  CacheTierParams params;
  params.enabled = true;
  params.line_size = 64 * kKiB;
  params.capacity = lines * params.line_size;
  params.flush_threshold = 1.0;  // tests trigger flushes explicitly
  return params;
}

constexpr Sector kLineSectors = 64 * kKiB / kSectorSize;  // 128

IoRequest line_read(std::uint64_t line, Bytes bytes = 64 * kKiB) {
  return IoRequest{line + 1, line * kLineSectors, bytes, OpType::kRead};
}

IoRequest line_write(std::uint64_t line, Bytes bytes = 64 * kKiB) {
  return IoRequest{line + 1, line * kLineSectors, bytes, OpType::kWrite};
}

Seconds run_one(sim::Simulator& sim, CacheTier& cache, const IoRequest& req) {
  Seconds latency = -1.0;
  cache.submit(req, [&latency](const IoCompletion& c) { latency = c.latency(); });
  sim.run();
  return latency;
}

TEST(CacheTier, RejectsBadParameters) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  auto expect_throws = [&](CacheTierParams p) {
    EXPECT_THROW(CacheTier(sim, p, backing), std::invalid_argument);
  };
  CacheTierParams p = small_cache(4);
  p.line_size = 0;
  expect_throws(p);
  p = small_cache(4);
  p.line_size = 1000;  // not a sector multiple
  expect_throws(p);
  p = small_cache(4);
  p.capacity = p.line_size - 1;
  expect_throws(p);
  p = small_cache(4);
  p.flush_threshold = 0.0;
  expect_throws(p);
  p = small_cache(4);
  p.flush_threshold = 1.5;
  expect_throws(p);
  p = small_cache(4);
  p.flush_batch_lines = 0;
  expect_throws(p);
  p = small_cache(4);
  p.hit_latency = -1e-6;
  expect_throws(p);
  p = small_cache(4);
  p.tier_enabled = true;
  p.tier_capacity = p.line_size - 1;
  expect_throws(p);
}

TEST(CacheTier, ReadMissFillsThenHits) {
  sim::Simulator sim;
  FakeBacking backing(sim, 0.01);
  CacheTier cache(sim, small_cache(4), backing);

  const Seconds miss_latency = run_one(sim, cache, line_read(0));
  EXPECT_DOUBLE_EQ(miss_latency, 0.01);  // full media service
  EXPECT_EQ(backing.reads(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.dram_lines(), 1u);

  const Seconds hit_latency = run_one(sim, cache, line_read(0));
  EXPECT_NEAR(hit_latency, cache.params().hit_latency, 1e-9);
  EXPECT_EQ(backing.reads(), 1u);  // media untouched
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheTier, WriteIsAbsorbedWithoutTouchingMedia) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTier cache(sim, small_cache(4), backing);

  const Seconds latency = run_one(sim, cache, line_write(0));
  EXPECT_NEAR(latency, cache.params().hit_latency, 1e-9);
  EXPECT_EQ(backing.writes(), 0u);
  EXPECT_EQ(cache.dirty_lines(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // The dirty line serves subsequent reads.
  const Seconds hit_latency = run_one(sim, cache, line_read(0));
  EXPECT_NEAR(hit_latency, cache.params().hit_latency, 1e-9);
  EXPECT_EQ(backing.reads(), 0u);
}

TEST(CacheTier, DirtyRatioTriggersFlushBatch) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(4);
  params.flush_threshold = 0.5;  // flush at 2 of 4 lines dirty
  CacheTier cache(sim, params, backing);

  run_one(sim, cache, line_write(0));
  EXPECT_EQ(cache.stats().flushes, 0u);
  run_one(sim, cache, line_write(1));
  EXPECT_EQ(cache.stats().flushes, 1u);
  EXPECT_EQ(backing.writes(), 2u);  // both dirty lines written back
  EXPECT_EQ(cache.dirty_lines(), 0u);
  EXPECT_EQ(cache.dram_lines(), 2u);  // flushed lines stay cached, clean
}

TEST(CacheTier, EvictionWritesBackDirtyLines) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTier cache(sim, small_cache(2), backing);

  run_one(sim, cache, line_write(0));  // dirty, 1 of 2 < threshold 1.0
  run_one(sim, cache, line_read(1));   // miss fill
  run_one(sim, cache, line_read(2));   // miss fill -> evicts dirty line 0
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(backing.writes(), 1u);  // the write-back
  EXPECT_EQ(cache.dirty_lines(), 0u);

  // Line 0 is gone: reading it again is a miss.
  run_one(sim, cache, line_read(0));
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(CacheTier, LruKeepsRecentlyTouchedLines) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTier cache(sim, small_cache(2), backing);

  run_one(sim, cache, line_read(0));
  run_one(sim, cache, line_read(1));
  run_one(sim, cache, line_read(0));  // hit: line 0 becomes most-recent
  run_one(sim, cache, line_read(2));  // evicts line 1, not line 0
  EXPECT_NEAR(run_one(sim, cache, line_read(0)),
              cache.params().hit_latency, 1e-9);
  EXPECT_EQ(cache.stats().misses, 3u);  // lines 0, 1, 2 first loads
  run_one(sim, cache, line_read(1));    // was evicted
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CacheTier, OversizedRequestBypassesCache) {
  sim::Simulator sim;
  FakeBacking backing(sim, 0.02);
  CacheTier cache(sim, small_cache(2), backing);

  const Seconds latency =
      run_one(sim, cache, IoRequest{9, 0, 4 * 64 * kKiB, OpType::kRead});
  EXPECT_NEAR(latency, 0.02, 1e-9);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.dram_lines(), 0u);  // bypasses never fill
}

TEST(CacheTier, HotEvictedLinesPromoteToTierAndHitThere) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(2);
  params.tier_enabled = true;
  params.tier_capacity = 2 * params.line_size;
  params.promote_after = 2;
  CacheTier cache(sim, params, backing);

  run_one(sim, cache, line_read(0));  // miss, accesses(0) = 1
  run_one(sim, cache, line_read(0));  // hit, accesses(0) = 2
  run_one(sim, cache, line_read(1));  // miss fill
  run_one(sim, cache, line_read(2));  // evicts line 0 -> hot -> promoted
  EXPECT_EQ(cache.stats().promotions, 1u);
  EXPECT_EQ(cache.tier_lines(), 1u);

  // Line 0 now serves from the SSD tier: slower than DRAM, still no media.
  const std::uint64_t media_reads = backing.reads();
  const Seconds latency = run_one(sim, cache, line_read(0));
  EXPECT_NEAR(latency, params.tier_hit_latency, 1e-9);
  EXPECT_EQ(backing.reads(), media_reads);
  EXPECT_EQ(cache.stats().tier_hits, 1u);
  // The tier hit copied line 0 back into DRAM.
  EXPECT_NEAR(run_one(sim, cache, line_read(0)), params.hit_latency, 1e-9);
}

TEST(CacheTier, FullTierDemotesColdestLine) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(1);
  params.tier_enabled = true;
  params.tier_capacity = params.line_size;  // one tier slot
  params.promote_after = 1;                 // every eviction promotes
  CacheTier cache(sim, params, backing);

  run_one(sim, cache, line_read(0));
  run_one(sim, cache, line_read(1));  // evict 0 -> promote 0
  run_one(sim, cache, line_read(2));  // evict 1 -> tier full -> demote 0
  EXPECT_EQ(cache.stats().promotions, 2u);
  EXPECT_EQ(cache.stats().demotions, 1u);
  EXPECT_EQ(cache.tier_lines(), 1u);
}

TEST(CacheTier, WritesInvalidateTierCopies) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(1);
  params.tier_enabled = true;
  params.tier_capacity = 2 * params.line_size;
  params.promote_after = 2;
  CacheTier cache(sim, params, backing);

  run_one(sim, cache, line_read(0));
  run_one(sim, cache, line_read(0));   // accesses(0) = 2: promotable
  run_one(sim, cache, line_read(1));   // evict 0 -> promote
  EXPECT_EQ(cache.tier_lines(), 1u);
  // The write's DRAM allocation evicts line 1 (too cold to promote) and
  // must drop the now-stale tier copy of line 0.
  run_one(sim, cache, line_write(0));
  EXPECT_EQ(cache.tier_lines(), 0u);
}

TEST(CacheTier, ExactJoulesIdlePlusHitPulse) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(4);
  params.hit_latency = 0.5;  // long enough for measurable pulse energy
  CacheTier cache(sim, params, backing);

  run_one(sim, cache, line_write(0));
  // 2 s standing draw + one hit pulse over the 0.5 s service window; the
  // zero-watt backing contributes nothing.
  const Joules expected =
      2.0 * params.idle_watts + params.hit_latency * params.hit_extra_watts;
  EXPECT_NEAR(cache.energy_until(2.0), expected, 1e-9);
}

TEST(CacheTier, TierStandingDrawIsMetered) {
  sim::Simulator sim;
  FakeBacking backing(sim);
  CacheTierParams params = small_cache(4);
  params.tier_enabled = true;
  CacheTier cache(sim, params, backing);
  EXPECT_NEAR(cache.power_at(0.0), params.idle_watts + params.tier_idle_watts,
              1e-12);
  EXPECT_EQ(cache.name(), "cache+fake");
}

TEST(CacheTier, HitsKeepSpunDownDisksAsleep) {
  // The reason this wrapper exists: once the working set is cached, the
  // spindles can stay in standby — the media-direct model can never show
  // this.
  sim::Simulator sim;
  DiskArray array(sim, ArrayConfig::hdd_testbed(6));
  CacheTierParams params = small_cache(16);
  CacheTier cache(sim, params, array);

  // Warm the line through the media, then let the policy stop every disk.
  run_one(sim, cache, line_read(0));
  SpinDownPolicyParams policy;
  policy.idle_timeout = 1.0;
  SpinDownManager manager(sim, array.hdd_disks(), policy);
  sim.schedule_at(sim.now() + 2.0, [&manager] { manager.evaluate(); });
  sim.run();
  ASSERT_EQ(manager.active_disks(), 0u);

  // Cached read: completes at DRAM latency, no disk wakes up.
  const Seconds latency = run_one(sim, cache, line_read(0));
  EXPECT_NEAR(latency, params.hit_latency, 1e-9);
  EXPECT_EQ(manager.active_disks(), 0u);
  for (HddModel* disk : array.hdd_disks()) {
    EXPECT_EQ(disk->power_state(), HddModel::PowerState::kStandby);
    EXPECT_EQ(disk->spin_ups(), 0u);
  }
}

}  // namespace
}  // namespace tracer::storage
