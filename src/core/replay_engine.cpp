#include "core/replay_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/span.h"

namespace tracer::core {

ReplayEngine::ReplayEngine(const ReplayOptions& options)
    : options_(options), monitor_(options.sampling_cycle) {
  if (!(options_.time_scale > 0.0) || !(options_.sampling_cycle > 0.0)) {
    throw std::invalid_argument("ReplayEngine: bad time scale or cycle");
  }
  if (options_.warmup_window < 0.0) {
    throw std::invalid_argument("ReplayEngine: negative warmup_window");
  }
}

Sector wrap_sector(Sector sector, Bytes bytes, Bytes capacity) {
  const Sector capacity_sectors = capacity / kSectorSize;
  const Sector request_sectors =
      std::max<Sector>(1, (bytes + kSectorSize - 1) / kSectorSize);
  if (capacity_sectors < request_sectors) {
    throw std::invalid_argument("replay: request larger than device");
  }
  // Valid start sectors form the inclusive range
  // [0, capacity_sectors - request_sectors], so the modulus is usable + 1;
  // a request that exactly fills the device always starts at 0.
  const Sector usable = capacity_sectors - request_sectors;
  return sector % (usable + 1);
}

void ReplayEngine::schedule_bunch(const trace::TraceSource& source,
                                  std::size_t index,
                                  storage::BlockDevice& device,
                                  Seconds warm_end) {
  if (index >= source.bunch_count()) {
    trace_exhausted_ = true;
    return;
  }
  const Seconds at = source.timestamp(index) / options_.time_scale;
  if (options_.max_duration > 0.0 && at > options_.max_duration) {
    trace_exhausted_ = true;
    return;
  }
  auto issue = [this, &source, index, &device, warm_end] {
    // Warm-up bunches populate device state (caches, tiers) but stay out of
    // the perf metrics; classification is by submit time, matching the
    // sharded kernel. With warmup_window == 0 this is always true.
    const bool measured = !(sim_.now() < warm_end);
    if (measured) {
      ++bunches_submitted_;
    } else {
      ++warmup_bunches_;
    }
    // Concurrent packages of a bunch are submitted in parallel (§IV-A).
    // For a window-backed source this is the only packages() call for
    // this index, strictly in order — the sliding-window contract.
    for (const auto& pkg : source.packages(index)) {
      storage::IoRequest request;
      request.id = next_id_++;
      request.sector = options_.wrap_addresses
                           ? wrap_sector(pkg.sector, pkg.bytes,
                                         device.capacity())
                           : pkg.sector;
      request.bytes = pkg.bytes;
      request.op = pkg.op;
      ++packages_in_flight_;
      if (measured) {
        ++packages_submitted_;
      } else {
        ++warmup_packages_;
      }
      max_in_flight_ = std::max(max_in_flight_, packages_in_flight_);
      device.submit(request, [this, measured](
                                 const storage::IoCompletion& completion) {
        --packages_in_flight_;
        if (measured) monitor_.on_complete(completion);
      });
    }
    schedule_bunch(source, index + 1, device, warm_end);
  };
  // The hot loop's own event kind must never heap-allocate (§perf): the
  // closure has to fit the simulator Action's inline buffer.
  static_assert(sim::Simulator::Action::fits_inline<decltype(issue)>);
  sim_.schedule_at(at, std::move(issue));
}

ReplayReport ReplayEngine::replay(
    const trace::Trace& trace, storage::BlockDevice& device,
    const std::vector<power::PowerSource*>& extra_sources) {
  // The borrowed view only lives for this call; `trace` outlives it.
  return replay(trace::TraceView::borrowed(trace), device, extra_sources);
}

ReplayReport ReplayEngine::replay(
    const trace::TraceView& view, storage::BlockDevice& device,
    const std::vector<power::PowerSource*>& extra_sources) {
  // The adapter only lives for this call; the view's shared trace outlives
  // it. Same loop, same arithmetic, same metrics as before the source
  // abstraction existed.
  const trace::ViewSource source(view);
  return replay(static_cast<const trace::TraceSource&>(source), device,
                extra_sources);
}

ReplayReport ReplayEngine::replay(
    const trace::TraceSource& source, storage::BlockDevice& device,
    const std::vector<power::PowerSource*>& extra_sources) {
  if (source.empty()) {
    throw std::invalid_argument("ReplayEngine: empty trace");
  }
  TRACER_SPAN("replay.run");
  monitor_.reset();
  packages_in_flight_ = 0;
  packages_submitted_ = 0;
  bunches_submitted_ = 0;
  warmup_packages_ = 0;
  warmup_bunches_ = 0;
  max_in_flight_ = 0;
  trace_exhausted_ = false;
  const std::uint64_t events_before = sim_.events_dispatched();
  const std::uint64_t late_before = sim_.late_schedule_count();

  Seconds effective_window = source.duration() / options_.time_scale;
  if (options_.max_duration > 0.0) {
    effective_window = std::min(effective_window, options_.max_duration);
  }
  if (options_.warmup_window > 0.0 &&
      options_.warmup_window >= effective_window) {
    throw std::invalid_argument(
        "ReplayEngine: warmup_window must be shorter than the replayed "
        "window");
  }
  // Measurement opens at the warm-up boundary; with warmup_window == 0 this
  // is sim_.now() and the whole path below is identical to a warmup-free
  // replay.
  const Seconds warm_end = sim_.now() + options_.warmup_window;

  power::PowerAnalyzer analyzer(options_.sampling_cycle, options_.sensor,
                                options_.sensor_seed);
  analyzer.add_channel(device);
  for (auto* source : extra_sources) {
    if (source == nullptr) {
      throw std::invalid_argument("ReplayEngine: null extra power source");
    }
    analyzer.add_channel(*source);
  }
  if (options_.warmup_window > 0.0) {
    // Re-starting at the boundary zeroes every channel's energy baseline,
    // so joules/avg_watts cover only the measured window.
    sim_.schedule_at(warm_end,
                     [&analyzer, warm_end] { analyzer.start(warm_end); });
  } else {
    analyzer.start(sim_.now());
  }

  // Self-perpetuating sampler: keeps metering until the replay has drained.
  // Stored in a struct so the lambda can reschedule itself.
  struct Sampler {
    ReplayEngine* engine;
    power::PowerAnalyzer* analyzer;
    Seconds cycle;
    std::uint64_t last_completions = 0;
    Bytes last_bytes = 0;
    void arm(Seconds at) {
      auto tick = [this, at] {
        analyzer->sample_at(at);
        if (engine->options_.on_cycle) {
          const auto& samples = analyzer->report(0).samples;
          CycleSnapshot snapshot;
          snapshot.time = at;
          snapshot.completions = engine->monitor_.completions();
          snapshot.in_flight = engine->packages_in_flight_;
          snapshot.iops =
              static_cast<double>(snapshot.completions - last_completions) /
              cycle;
          snapshot.mbps = static_cast<double>(engine->monitor_.bytes() -
                                              last_bytes) /
                          cycle / 1.0e6;
          snapshot.watts = samples.empty() ? 0.0 : samples.back().watts;
          last_completions = snapshot.completions;
          last_bytes = engine->monitor_.bytes();
          engine->options_.on_cycle(snapshot);
        }
        if (!engine->trace_exhausted_ || engine->packages_in_flight_ > 0) {
          arm(at + cycle);
        }
      };
      static_assert(sim::Simulator::Action::fits_inline<decltype(tick)>);
      engine->sim_.schedule_at(at, std::move(tick));
    }
  };
  Sampler sampler{this, &analyzer, options_.sampling_cycle, 0, 0};
  sampler.arm(warm_end + options_.sampling_cycle);

  // Steady state keeps one bunch event, one sampler event, and the in-
  // flight completions queued; reserve the device's own worst-case estimate
  // so scheduling never reallocates mid-replay (the capacity-stability
  // regression test replays twice and asserts no growth).
  sim_.reserve(std::max<std::size_t>(256, device.max_concurrent_events() + 64));
  schedule_bunch(source, 0, device, warm_end);
  sim_.run();

  const Seconds end = sim_.now();
  // Take the final (possibly partial) cycle so energy totals are complete.
  analyzer.sample_at(end);

  ReplayReport report =
      assemble_report(source, analyzer, end, extra_sources.size());
  report.events_dispatched = sim_.events_dispatched() - events_before;
  report.late_schedules = sim_.late_schedule_count() - late_before;

  // Registry counters are bumped once per replay (never per event), so the
  // DES hot loop touches no shared state. Handles are cached in statics:
  // after the first replay this is five relaxed atomic adds.
  {
    auto& reg = obs::Registry::global();
    static auto& runs = reg.counter("replay.runs");
    static auto& bunches = reg.counter("replay.bunches");
    static auto& packages = reg.counter("replay.packages");
    static auto& events = reg.counter("replay.events_scheduled");
    static auto& late = reg.counter("replay.events_late");
    static auto& warmup = reg.counter("replay.warmup_packages");
    static auto& depth = reg.gauge("replay.max_in_flight");
    runs.increment();
    bunches.add(bunches_submitted_ + warmup_bunches_);
    packages.add(packages_submitted_ + warmup_packages_);
    warmup.add(warmup_packages_);
    events.add(sim_.events_dispatched() - events_before);
    late.add(sim_.late_schedule_count() - late_before);
    depth.update_max(static_cast<double>(max_in_flight_));
  }
  return report;
}

ReplayReport ReplayEngine::assemble_report(const trace::TraceSource& source,
                                           power::PowerAnalyzer& analyzer,
                                           Seconds end,
                                           std::size_t extra_channel_count) {
  ReplayReport report;
  report.replay_duration = end;
  report.bunches_replayed = bunches_submitted_;
  report.packages_replayed = packages_submitted_;
  report.warmup_bunches = warmup_bunches_;
  report.warmup_packages = warmup_packages_;
  // Rates are computed over the trace's own window (filtering preserves
  // timestamps, so original and manipulated traces share this window);
  // completions that drain past the window still count. Using the drain-
  // inclusive end instead would deflate T(f) at saturation and corrupt the
  // eq. 1 load proportions. The warm-up prefix is not part of the measured
  // window (its completions were never fed to the monitor).
  Seconds trace_window =
      source.duration() / options_.time_scale - options_.warmup_window;
  if (options_.max_duration > 0.0) {
    trace_window =
        std::min(trace_window, options_.max_duration - options_.warmup_window);
  }
  trace_window = std::max(trace_window, options_.sampling_cycle);
  report.perf = monitor_.report(trace_window);

  const auto& channel = analyzer.report(0);
  report.avg_watts = channel.mean_watts();
  report.avg_true_watts = channel.mean_true_watts();
  report.joules = channel.true_joules;
  if (!channel.samples.empty()) {
    for (const auto& s : channel.samples) {
      report.avg_volts += s.volts;
      report.avg_amps += s.amps;
    }
    report.avg_volts /= static_cast<double>(channel.samples.size());
    report.avg_amps /= static_cast<double>(channel.samples.size());
  }
  report.power_series = channel.samples;
  report.extra_channels.reserve(extra_channel_count);
  for (std::size_t ch = 1; ch <= extra_channel_count; ++ch) {
    report.extra_channels.push_back(analyzer.report(ch));
  }
  if (report.avg_watts > 0.0) {
    report.efficiency = compute_efficiency(report.perf.iops, report.perf.mbps,
                                           report.avg_watts);
  }
  return report;
}

}  // namespace tracer::core
