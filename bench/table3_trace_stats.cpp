// Table III: characteristics of the web-server trace. The paper reports
// file-system size 169.54 GB, dataset 23.31 GB, read ratio 90.39 %, and
// average request size 21.5 KB for the FIU O4 web-server trace. Our
// synthesiser is parameterised to those statistics; this bench generates
// the trace and measures them back through trace::compute_stats.
#include "bench_common.h"

#include "trace/trace_stats.h"
#include "workload/web_server_model.h"

int main() {
  using namespace tracer;
  bench::print_header(
      "Table III — web-server trace characteristics",
      "fs 169.54 GB | dataset 23.31 GB | read 90.39 % | avg req 21.5 KB");

  workload::WebServerParams params;
  // A full week of traffic is what Table III characterises; 2 hours of the
  // same process is enough for the statistics to converge.
  params.duration = 7200.0;
  workload::WebServerModel model(params);
  const trace::Trace web = model.generate();
  const trace::TraceStats stats = trace::compute_stats(web);

  util::Table table({"metric", "paper", "measured"});
  const double span_gb = static_cast<double>(stats.address_span_bytes) / 1e9;
  const double dataset_gb = static_cast<double>(stats.dataset_bytes) / 1e9;
  table.row().add("file-system span (GB)").add(169.54, 2).add(span_gb, 2).done();
  table.row().add("dataset touched (GB)").add(23.31, 2).add(dataset_gb, 2).done();
  table.row()
      .add("read ratio (%)")
      .add(90.39, 2)
      .add(stats.read_ratio * 100.0, 2)
      .done();
  table.row()
      .add("avg request size (KB)")
      .add(21.5, 1)
      .add(stats.mean_request_kb, 1)
      .done();
  table.print(std::cout);
  std::printf("(trace: %llu packages, %.0f s, %.1f IOPS, %.2f MBPS)\n",
              static_cast<unsigned long long>(stats.packages), stats.duration,
              stats.mean_iops, stats.mean_mbps);

  const bool read_ok = std::abs(stats.read_ratio - 0.9039) < 0.01;
  const bool size_ok = std::abs(stats.mean_request_kb - 21.5) < 3.0;
  const bool span_ok = span_gb > 120.0 && span_gb <= 170.0;
  // Zipf popularity means a 2 h window touches part of the full dataset;
  // the object population itself covers 23.31 GB.
  const bool dataset_ok = dataset_gb > 2.0 && dataset_gb <= 23.31;
  bench::print_verdict(read_ok, "read ratio matches Table III");
  bench::print_verdict(size_ok, "average request size matches Table III");
  bench::print_verdict(span_ok && dataset_ok,
                       "address span / dataset consistent with Table III");
  return 0;
}
