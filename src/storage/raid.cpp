#include "storage/raid.h"

#include <algorithm>

namespace tracer::storage {

RaidGeometry::RaidGeometry(RaidLevel lvl, std::size_t disks, Bytes unit,
                           Bytes disk_cap)
    : level(lvl), disk_count(disks), stripe_unit(unit), disk_capacity(disk_cap) {
  if (disks == 0 || (lvl == RaidLevel::kRaid5 && disks < 3)) {
    throw std::invalid_argument("RaidGeometry: RAID-5 needs >= 3 disks");
  }
  if (unit == 0 || unit % kSectorSize != 0) {
    throw std::invalid_argument(
        "RaidGeometry: stripe unit must be a positive sector multiple");
  }
  if (disk_cap < unit) {
    throw std::invalid_argument("RaidGeometry: disk capacity < stripe unit");
  }
}

Bytes RaidGeometry::capacity() const {
  return rows() * stripe_unit * data_disks();
}

std::size_t RaidGeometry::parity_disk(std::uint64_t row) const {
  if (level != RaidLevel::kRaid5) {
    throw std::logic_error("parity_disk: not a parity RAID level");
  }
  return disk_count - 1 - static_cast<std::size_t>(row % disk_count);
}

std::vector<RaidGeometry::Extent> RaidGeometry::map(Bytes logical_byte,
                                                    Bytes bytes) const {
  std::vector<Extent> extents;
  map_into(logical_byte, bytes, extents);
  return extents;
}

void RaidGeometry::map_into(Bytes logical_byte, Bytes bytes,
                            std::vector<Extent>& out) const {
  if (logical_byte + bytes > capacity()) {
    throw std::out_of_range("RaidGeometry::map: extent beyond capacity");
  }
  out.clear();
  Bytes remaining = bytes;
  Bytes at = logical_byte;
  while (remaining > 0) {
    const std::uint64_t unit_index = at / stripe_unit;
    const Bytes offset = at % stripe_unit;
    const Bytes chunk = std::min<Bytes>(remaining, stripe_unit - offset);

    const std::uint64_t row = unit_index / data_disks();
    const auto position = static_cast<std::size_t>(unit_index % data_disks());

    std::size_t disk;
    if (level == RaidLevel::kRaid5) {
      // Left-symmetric: data units fill the row starting just after the
      // parity disk, wrapping around.
      const std::size_t pd = parity_disk(row);
      disk = (pd + 1 + position) % disk_count;
    } else {
      disk = position;
    }

    Extent extent;
    extent.disk = disk;
    extent.sector = (row * stripe_unit + offset) / kSectorSize;
    extent.bytes = chunk;
    extent.row = row;
    extent.offset_in_unit = offset;
    out.push_back(extent);

    at += chunk;
    remaining -= chunk;
  }
}

RaidGeometry::Extent RaidGeometry::parity_extent(std::uint64_t row,
                                                 Bytes offset_in_unit,
                                                 Bytes bytes) const {
  Extent extent;
  extent.disk = parity_disk(row);
  extent.sector = (row * stripe_unit + offset_in_unit) / kSectorSize;
  extent.bytes = bytes;
  extent.row = row;
  extent.offset_in_unit = offset_in_unit;
  return extent;
}

}  // namespace tracer::storage
