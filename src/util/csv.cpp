#include "util/csv.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace tracer::util {

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::string_view s) {
  fields_.emplace_back(s);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double v, int precision) {
  fields_.push_back(format("%.*f", precision, v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add_lossless(double v) {
  fields_.push_back(format("%.17g", v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::uint64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::int64_t v) {
  fields_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::RowBuilder::done() { writer_.write_row(fields_); }

std::vector<std::vector<std::string>> CsvReader::parse(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        field_started = true;  // note the delimiter so trailing empties count
        end_field();
        field_started = true;
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  end_row();
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CsvReader: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace tracer::util
