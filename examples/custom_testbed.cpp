// Example: building testbeds from an external drive library — the
// DiskSim-integration path of the paper's conclusions. Loads
// data/diskspecs/fleet.spec, builds one RAID-5 array per drive model, and
// compares their energy efficiency under an identical workload mode.
//
// Usage: custom_testbed [path/to/fleet.spec]
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/evaluation_host.h"
#include "storage/diskspec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace tracer;

  std::string spec_path = argc > 1 ? argv[1] : "";
  if (spec_path.empty()) {
    // Search upward from the working directory for the shipped library.
    for (auto dir = std::filesystem::current_path();;
         dir = dir.parent_path()) {
      const auto candidate = dir / "data" / "diskspecs" / "fleet.spec";
      if (std::filesystem::exists(candidate)) {
        spec_path = candidate.string();
        break;
      }
      if (dir == dir.root_path()) break;
    }
  }
  if (spec_path.empty() || !std::filesystem::exists(spec_path)) {
    std::fprintf(stderr, "usage: %s <fleet.spec> (data/diskspecs/fleet.spec "
                         "not found from cwd)\n",
                 argv[0]);
    return 1;
  }

  const auto specs = storage::load_diskspecs(spec_path);
  std::printf("loaded %zu drive models from %s\n\n", specs.size(),
              spec_path.c_str());

  workload::WorkloadMode mode;
  mode.request_size = 64 * kKiB;
  mode.random_ratio = 0.25;
  mode.read_ratio = 0.5;
  mode.load_proportion = 1.0;

  core::EvaluationOptions options;
  options.collection_duration = 3.0;

  util::Table table({"drive model", "rpm", "idle W/disk", "MBPS", "array W",
                     "MBPS/kW", "resp ms"});
  for (const auto& [name, hdd] : specs) {
    storage::ArrayConfig config = storage::ArrayConfig::hdd_testbed(6);
    config.name = "raid5-" + name;
    config.hdd = hdd;
    core::EvaluationHost host(
        config, std::filesystem::temp_directory_path() / "tracer-fleet",
        options);
    const auto record = host.run_test(mode).record;
    table.row()
        .add(name)
        .add(hdd.rpm, 0)
        .add(hdd.idle_watts, 1)
        .add(record.mbps, 2)
        .add(record.avg_watts, 1)
        .add(record.mbps_per_kilowatt, 1)
        .add(record.avg_response_ms, 2)
        .done();
  }
  table.print(std::cout);
  std::printf("\nmode: %s on 6-disk RAID-5 per model\n",
              mode.to_string().c_str());
  return 0;
}
