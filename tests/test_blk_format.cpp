#include "trace/blk_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>

#include "util/binary_io.h"
#include "util/rng.h"

namespace tracer::trace {
namespace {

Trace random_trace(std::size_t bunches, std::uint64_t seed) {
  util::Rng rng(seed);
  Trace trace;
  trace.device = "raid5-hdd6";
  for (std::size_t b = 0; b < bunches; ++b) {
    Bunch bunch;
    bunch.timestamp = static_cast<double>(b) * rng.uniform(0.5e-3, 2e-3);
    const std::size_t count = 1 + rng.below(8);
    for (std::size_t p = 0; p < count; ++p) {
      IoPackage pkg;
      pkg.sector = rng.below(1ULL << 40);
      pkg.bytes = (1 + rng.below(256)) * 512;
      pkg.op = rng.chance(0.5) ? OpType::kRead : OpType::kWrite;
      bunch.packages.push_back(pkg);
    }
    trace.bunches.push_back(std::move(bunch));
  }
  return trace;
}

TEST(BlkFormat, RoundTripsInMemory) {
  const Trace original = random_trace(500, 42);
  std::stringstream buffer;
  write_blk(buffer, original);
  const Trace loaded = read_blk(buffer);
  EXPECT_EQ(loaded, original);
}

TEST(BlkFormat, RoundTripsEmptyTrace) {
  Trace trace;
  trace.device = "empty";
  std::stringstream buffer;
  write_blk(buffer, trace);
  const Trace loaded = read_blk(buffer);
  EXPECT_EQ(loaded, trace);
}

TEST(BlkFormat, RoundTripsViaFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "tracer_blk_test.replay";
  const Trace original = random_trace(100, 7);
  write_blk_file(path.string(), original);
  const Trace loaded = read_blk_file(path.string());
  EXPECT_EQ(loaded, original);
  std::filesystem::remove(path);
}

TEST(BlkFormat, MissingFileThrows) {
  EXPECT_THROW(read_blk_file("/nonexistent/t.replay"), std::runtime_error);
}

TEST(BlkFormat, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "JUNKJUNKJUNKJUNK";
  EXPECT_THROW(read_blk(buffer), std::runtime_error);
}

TEST(BlkFormat, WrongVersionRejected) {
  std::stringstream buffer;
  buffer.write(kBlkMagic, 4);
  buffer.put(static_cast<char>(99));  // version lo byte
  buffer.put(0);
  buffer << std::string(32, '\0');
  EXPECT_THROW(read_blk(buffer), std::runtime_error);
}

TEST(BlkFormat, TruncatedPayloadThrows) {
  const Trace original = random_trace(50, 3);
  std::stringstream buffer;
  write_blk(buffer, original);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::istringstream truncated(data);
  EXPECT_THROW(read_blk(truncated), std::runtime_error);
}

TEST(BlkFormat, BadOpCodeRejected) {
  Trace trace;
  Bunch bunch;
  bunch.packages.push_back(IoPackage{0, 512, OpType::kRead});
  trace.bunches.push_back(bunch);
  std::stringstream buffer;
  write_blk(buffer, trace);
  std::string data = buffer.str();
  data.back() = 7;  // op byte is last
  std::istringstream corrupted(data);
  EXPECT_THROW(read_blk(corrupted), std::runtime_error);
}

TEST(BlkFormat, PreservesDeviceName) {
  Trace trace;
  trace.device = "raid5-ssd4_special";
  std::stringstream buffer;
  write_blk(buffer, trace);
  EXPECT_EQ(read_blk(buffer).device, "raid5-ssd4_special");
}

TEST(BlkFormat, TimestampPrecisionSurvives) {
  Trace trace;
  Bunch bunch;
  bunch.timestamp = 1234.56789012345;
  bunch.packages.push_back(IoPackage{1, 512, OpType::kWrite});
  trace.bunches.push_back(bunch);
  std::stringstream buffer;
  write_blk(buffer, trace);
  EXPECT_DOUBLE_EQ(read_blk(buffer).bunches[0].timestamp, 1234.56789012345);
}

// --- untrusted-header hardening ---------------------------------------------

// A v1 header claiming a huge bunch count followed by (almost) no data. A
// vector reserve driven by the raw header field would try to allocate
// hundreds of GB here; the decoder must reject the count against the
// remaining stream size before any allocation.
std::string crafted_header(std::uint64_t bunch_count,
                           const std::string& tail = {}) {
  std::stringstream buffer;
  util::BinaryWriter writer(buffer);
  writer.raw(kBlkMagic, 4);
  writer.u16(kBlkVersion);
  writer.str("");  // empty device: the minimal syntactically valid header
  writer.u64(bunch_count);
  return buffer.str() + tail;
}

TEST(BlkFormatHardening, HugeDeclaredCountWithEmptyBodyRejected) {
  // ~100M declared bunches, zero bytes of body: must throw, not allocate.
  std::istringstream in(crafted_header(100'000'000ULL));
  EXPECT_THROW(read_blk(in), std::runtime_error);
  std::istringstream in2(crafted_header(100'000'000ULL));
  EXPECT_THROW(read_blk_streamed(in2), std::runtime_error);
}

TEST(BlkFormatHardening, DeclaredCountJustOverBodyRejected) {
  // Body holds exactly one empty bunch (12 bytes) but the header claims 2.
  std::stringstream body;
  util::BinaryWriter writer(body);
  writer.f64(0.0);
  writer.u32(0);
  std::istringstream in(crafted_header(2, body.str()));
  EXPECT_THROW(read_blk(in), std::runtime_error);
}

TEST(BlkFormatHardening, DeclaredPackageCountOverBodyRejected) {
  // One bunch whose package count claims more payload than the stream has.
  std::stringstream body;
  util::BinaryWriter writer(body);
  writer.f64(0.0);
  writer.u32(1000);  // 13 KB of packages promised...
  writer.u64(0);     // ...but only one package's worth of bytes present
  writer.u32(512);
  writer.u8(0);
  std::istringstream in(crafted_header(1, body.str()));
  EXPECT_THROW(read_blk(in), std::runtime_error);
}

TEST(BlkFormatHardening, CountAboveFormatCapRejected) {
  std::istringstream in(crafted_header(kMaxTraceBunches + 1));
  EXPECT_THROW(read_blk(in), std::runtime_error);
}

// Truncation at EVERY byte offset must yield a clean runtime_error — never
// a crash, an over-allocation, or a silently partial trace.
TEST(BlkFormatHardening, TruncationAtEveryOffsetThrows) {
  const Trace original = random_trace(20, 11);
  std::stringstream buffer;
  write_blk(buffer, original);
  const std::string data = buffer.str();
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    std::istringstream in(data.substr(0, cut));
    EXPECT_THROW(read_blk(in), std::runtime_error) << "offset " << cut;
    std::istringstream in2(data.substr(0, cut));
    EXPECT_THROW(read_blk_streamed(in2), std::runtime_error)
        << "offset " << cut;
  }
  // Sanity: the untruncated bytes still decode.
  std::istringstream whole(data);
  EXPECT_EQ(read_blk(whole), original);
}

// --- timestamp validation ---------------------------------------------------

std::string trace_with_timestamp_bits(double timestamp) {
  std::stringstream body;
  util::BinaryWriter writer(body);
  writer.f64(timestamp);
  writer.u32(0);
  return crafted_header(1, body.str());
}

TEST(BlkFormatHardening, NonFiniteTimestampsRejectedOnRead) {
  for (const double bad : {std::nan(""),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), -1.0,
                           -1e-9}) {
    std::istringstream in(trace_with_timestamp_bits(bad));
    EXPECT_THROW(read_blk(in), std::runtime_error) << bad;
    std::istringstream in2(trace_with_timestamp_bits(bad));
    EXPECT_THROW(read_blk_streamed(in2), std::runtime_error) << bad;
  }
  // Zero and positive timestamps stay valid.
  std::istringstream ok(trace_with_timestamp_bits(0.0));
  EXPECT_EQ(read_blk(ok).bunch_count(), 1u);
}

TEST(BlkFormatHardening, WriterRejectsInvalidTimestamps) {
  Trace trace;
  Bunch bunch;
  bunch.timestamp = -0.5;
  trace.bunches.push_back(bunch);
  std::stringstream buffer;
  EXPECT_THROW(write_blk(buffer, trace), std::invalid_argument);
  trace.bunches[0].timestamp = std::nan("");
  std::stringstream buffer2;
  EXPECT_THROW(write_blk(buffer2, trace), std::invalid_argument);
}

// --- streaming reader/writer pair -------------------------------------------

TEST(BlkStream, WriterReaderRoundTripBunchByBunch) {
  const Trace original = random_trace(64, 5);
  std::stringstream buffer;
  BlkStreamWriter writer(buffer, original.device, original.bunches.size());
  for (const auto& bunch : original.bunches) writer.add(bunch);
  writer.finish();

  BlkStreamReader reader(buffer);
  EXPECT_EQ(reader.device(), original.device);
  EXPECT_EQ(reader.bunch_count(), original.bunches.size());
  Trace loaded;
  loaded.device = reader.device();
  Bunch bunch;
  while (reader.next(bunch)) loaded.bunches.push_back(bunch);
  EXPECT_EQ(loaded, original);
}

TEST(BlkStream, FinishVerifiesDeclaredCount) {
  std::stringstream buffer;
  BlkStreamWriter writer(buffer, "dev", 2);
  writer.add(0.0, {});
  EXPECT_THROW(writer.finish(), std::runtime_error);  // one short
  writer.add(1.0, {});
  writer.finish();
  std::stringstream buffer2;
  BlkStreamWriter writer2(buffer2, "dev", 1);
  writer2.add(0.0, {});
  EXPECT_THROW(writer2.add(1.0, {}), std::runtime_error);  // one over
}

// Property: round trip across irregular shapes — empty bunches, empty
// device-adjacent sizes, many-package bunches.
TEST(BlkStream, PropertyRoundTripIrregularShapes) {
  util::Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    Trace original;
    original.device = round % 2 ? "dev_under_score" : "d";
    const std::size_t bunches = rng.below(40);
    double t = 0.0;
    for (std::size_t b = 0; b < bunches; ++b) {
      Bunch bunch;
      t += rng.uniform(0.0, 1e-3);
      bunch.timestamp = t;
      const std::size_t count = rng.below(12);  // often zero: empty bunches
      for (std::size_t p = 0; p < count; ++p) {
        IoPackage pkg;
        pkg.sector = rng.below(1ULL << 40);
        pkg.bytes = rng.chance(0.1)
                        ? std::numeric_limits<std::uint32_t>::max()
                        : (1 + rng.below(256)) * 512;
        pkg.op = rng.chance(0.5) ? OpType::kRead : OpType::kWrite;
        bunch.packages.push_back(pkg);
      }
      original.bunches.push_back(std::move(bunch));
    }
    std::stringstream buffer;
    write_blk(buffer, original);
    EXPECT_EQ(read_blk(buffer), original) << "round " << round;
  }
}

}  // namespace
}  // namespace tracer::trace
