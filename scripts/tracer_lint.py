#!/usr/bin/env python3
"""Portable fallback gate for the TRACER project invariants.

The authoritative implementation of these checks is the clang-tidy plugin
in tools/tracer-tidy/ (AST-exact; loaded with `run_clang_tidy.sh
--plugin`). This script is the dependency-free fallback: a token-level
implementation of the same five checks that runs anywhere Python 3 runs,
so the gate holds on machines (and CI lanes) without a matching clang
toolchain. Both implementations share the fixture suite under
tools/tracer-tidy/test/fixtures — tests/test_tracer_tidy_fixtures.cpp
asserts every check fires on its fail fixture and stays silent on its
pass fixture.

Checks (docs/STATIC_ANALYSIS.md has the invariant -> check table):

  tracer-no-wallclock              wall-clock time sources banned; use
                                   util::MonotonicClock (label-only uses
                                   carry a justified NOLINT)
  tracer-no-naked-sync             std::mutex & friends banned outside
                                   util/sync.h; use the annotated wrappers
  tracer-lossless-double-format    %g/%f/%e with precision < 17 banned in
                                   codec paths (net/, db/, fleet_wire)
  tracer-no-nondeterminism-in-sim  entropy and unordered-container
                                   iteration banned in simulation paths
  tracer-unchecked-narrowing-in-codec
                                   implicit integer width loss banned in
                                   encode/decode functions (codec paths)
  tracer-nolint-justification      (linter-only) every NOLINT(tracer-...)
                                   must carry ": <reason>" in-line

Usage:
  tracer_lint.py [PATH...]          lint files/trees (default: src/)
  tracer_lint.py --fixture-mode F   lint one fixture with path filters off

Output is clang-tidy shaped: "file:line:col: warning: msg [check]".
Exit 1 when any diagnostic fires, 0 when clean.
"""

import fnmatch
import os
import re
import sys

PATH_FILTER_CODEC = re.compile(r"/(net|db)/|fleet_wire")
PATH_FILTER_NARROW = re.compile(r"/(net|db|trace)/|fleet_wire")
PATH_FILTER_SIM = re.compile(r"/(sim|storage)/|/core/replay")
ALLOW_NAKED_SYNC = re.compile(r"util/sync\.h$")

CODEC_FUNCTION = re.compile(
    r"encode|decode|serial|parse|read|write|load|store")

WALLCLOCK_PATTERNS = [
    (re.compile(r"std::chrono::system_clock|\bsystem_clock\s*::"),
     "std::chrono::system_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"\btimespec_get\s*\("), "timespec_get"),
    (re.compile(r"\bftime\s*\("), "ftime"),
    (re.compile(r"std::time\s*\(|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0|&)"),
     "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
]
# Formatting helpers that only convert an already-obtained time_t
# (gmtime_r, strftime, localtime_r) are deliberately NOT banned: the
# invariant is about where time is *read*, not how labels are printed.

NAKED_SYNC = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

RAND_CALLS = re.compile(
    r"std::s?rand\b|(?<![\w:.>])s?rand\s*\(|\b[dlm]rand48\s*\(|"
    r"\brand_r\s*\(|(?:std::)?\brandom_device\b")

UNSEEDED_ENGINE = re.compile(
    r"std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux\d+(?:_base)?|knuth_b)\s+\w+\s*(?:;|\{\s*\}|\(\s*\))")

UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<.*>\s*[&*]?\s*(\w+)")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*\*?\s*(\w+)\s*\)")

# printf-family conversion spec: %[flags][width][.precision][length]conv
FORMAT_SPEC = re.compile(
    r"%[-+ #0']*[0-9*]*(?:\.(\d+|\*))?[hljztL]*([a-zA-Z%])")
STRING_LITERAL = re.compile(r'"((?:[^"\\\n]|\\.)*)"')

INT_DECL = re.compile(
    r"(?:std::)?(u?int(8|16|32|64)_t|size_t|ptrdiff_t|streamsize)\s*"
    r"(?:\*|&)?\s+(\w+)")
ASSIGNMENT = re.compile(
    r"^\s*(?:[\w:<>]+\s+)?\*?\s*(\w+)(?:\[\w*\])?\s*=\s*([^=].*);")
NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")
JUSTIFIED_NOLINT = re.compile(r"NOLINT(?:NEXTLINE)?\([^)]*\)\s*:\s*\S.{8,}")

CONTROL_KEYWORDS = ("if", "for", "while", "switch", "return", "catch",
                    "sizeof", "static_assert")


def strip_comments(text):
    """Return (code_lines, comment_lines): per-line source with comments
    blanked, and per-line comment text (for NOLINT handling). String and
    char literal *contents* are preserved in code_lines (the format check
    needs them) but quotes inside comments are ignored."""
    code, comments = [], []
    cur_code, cur_comment = [], []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state in ("line_comment", "string", "char"):
                state = "code"  # unterminated literal: recover per line
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            cur_code.append(c)
        elif state == "line_comment":
            cur_comment.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                i += 2
                state = "code"
                continue
            cur_comment.append(c)
        elif state in ("string", "char"):
            # The opening quote was consumed in "code" state, so any
            # unescaped matching quote here closes the literal.
            cur_code.append(c)
            if c == "\\" and nxt:
                cur_code.append(nxt)
                i += 2
                continue
            if (state == "string" and c == '"') or \
                    (state == "char" and c == "'"):
                state = "code"
        i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


def blank_strings(line):
    """Replace string/char literal contents with spaces (keeps columns)."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote is None:
            out.append(c)
            if c in "\"'":
                quote = c
        else:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                out.append(c)
                quote = None
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Diagnostic:
    def __init__(self, path, line, col, message, check):
        self.path, self.line, self.col = path, line, col
        self.message, self.check = message, check

    def __str__(self):
        return (f"{self.path}:{self.line}:{self.col}: warning: "
                f"{self.message} [{self.check}]")


def lossy_format_specs(literal):
    """Yield (offset, spec, effective_precision) for floating conversions
    below %.17 in a format string. Precision -1 means dynamic '*'."""
    for m in FORMAT_SPEC.finditer(literal):
        conv = m.group(2)
        if conv not in "fFeEgG":
            continue
        prec = m.group(1)
        if prec == "*":
            yield m.start(), m.group(0), -1
        else:
            eff = 6 if prec is None else int(prec)
            if eff < 17:
                yield m.start(), m.group(0), eff


def enclosing_function_tracker(code_lines):
    """Best-effort map line-index -> enclosing function name. Tracks lines
    that look like function definitions (NAME( ... with a following '{',
    no ';' or '='), scoped by brace depth."""
    names = [None] * len(code_lines)
    current = []
    depth = 0
    pending = None
    fn_def = re.compile(r"\b(\w+)\s*\([^;]*$|\b(\w+)\s*\(.*\)"
                        r"\s*(?:const|noexcept|override|final)*\s*\{")
    for idx, line in enumerate(code_lines):
        stripped = blank_strings(line)
        if pending is None and depth == len(current):
            m = fn_def.search(stripped)
            if m and ";" not in stripped:
                name = m.group(1) or m.group(2)
                if name and name not in CONTROL_KEYWORDS:
                    pending = name
        opens = stripped.count("{")
        closes = stripped.count("}")
        if pending is not None and opens > 0:
            current.append(pending)
            pending = None
            depth += opens
        else:
            depth += opens
        depth -= closes
        if depth < 0:
            depth = 0
        while current and depth < len(current):
            current.pop()
        names[idx] = current[-1] if current else None
    return names


class FileLinter:
    def __init__(self, path, display_path, fixture_mode=False):
        self.path = path
        self.display = display_path
        self.fixture_mode = fixture_mode
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.code, self.comments = strip_comments(self.text)
        self.raw_lines = self.text.split("\n")
        self.diags = []

    def in_path(self, pattern):
        return self.fixture_mode or bool(pattern.search(self.display))

    def add(self, lineno, col, message, check):
        self.diags.append(
            Diagnostic(self.display, lineno + 1, col + 1, message, check))

    def run(self):
        self.check_wallclock()
        self.check_naked_sync()
        self.check_double_format()
        self.check_nondeterminism()
        self.check_narrowing()
        return self.apply_nolint()

    # -- the five checks ---------------------------------------------------

    def check_wallclock(self):
        for idx, line in enumerate(self.code):
            code = blank_strings(line)
            for pattern, what in WALLCLOCK_PATTERNS:
                m = pattern.search(code)
                if m:
                    self.add(idx, m.start(),
                             f"wall-clock time source '{what}' is banned: "
                             "lease/heartbeat/simulation arithmetic must use "
                             "util::MonotonicClock (util/clock.h); "
                             "label-only uses need a justified NOLINT",
                             "tracer-no-wallclock")
                    break  # one diagnostic per line

    def check_naked_sync(self):
        if not self.fixture_mode and ALLOW_NAKED_SYNC.search(self.display):
            return
        for idx, line in enumerate(self.code):
            m = NAKED_SYNC.search(blank_strings(line))
            if m:
                self.add(idx, m.start(),
                         f"naked 'std::{m.group(1)}' bypasses the Clang "
                         "thread-safety analysis; use the annotated "
                         "util::Mutex / util::MutexLock / util::CondVar "
                         "wrappers (util/sync.h)",
                         "tracer-no-naked-sync")

    def _in_scanf_call(self, idx):
        """True if line `idx` belongs to a scanf-family call statement."""
        for j in range(idx, max(idx - 4, -1), -1):
            code = blank_strings(self.code[j])
            if re.search(r"\b\w*scanf\s*\(", code):
                return True
            # A ';' on an earlier line ends the previous statement: the
            # format literal on `idx` cannot belong to a call opened above.
            if j < idx and ";" in code:
                return False
        return False

    def check_double_format(self):
        if not self.in_path(PATH_FILTER_CODEC):
            return
        for idx, line in enumerate(self.code):
            # scanf-family formats parse text they do not produce; %lg there
            # is mandatory for double and loses nothing (the clang check
            # only matches printf-family callees for the same reason). The
            # format string may sit a few lines below the callee, so scan
            # back to the enclosing statement start for the call name.
            if self._in_scanf_call(idx):
                continue
            for lit in STRING_LITERAL.finditer(line):
                for off, spec, prec in lossy_format_specs(lit.group(1)):
                    if prec < 0:
                        msg = (f"dynamic precision '{spec}' in a codec path "
                               "cannot be proven lossless; use a literal "
                               "'%.17g' (round-trips every finite double)")
                    else:
                        msg = (f"'{spec}' loses double precision in a codec "
                               f"path (effective precision {prec} < 17); use "
                               "'%.17g' so every finite double round-trips "
                               "bit-exactly")
                    self.add(idx, lit.start(1) + off, msg,
                             "tracer-lossless-double-format")

    def check_nondeterminism(self):
        if not self.in_path(PATH_FILTER_SIM):
            return
        unordered_vars = set()
        for line in self.code:
            for m in UNORDERED_DECL.finditer(blank_strings(line)):
                unordered_vars.add(m.group(1))
        for idx, line in enumerate(self.code):
            code = blank_strings(line)
            m = RAND_CALLS.search(code)
            if m:
                self.add(idx, m.start(),
                         "entropy source in a simulation path breaks replay "
                         "determinism; use util::Rng seeded from config",
                         "tracer-no-nondeterminism-in-sim")
                continue
            m = UNSEEDED_ENGINE.search(code)
            if m:
                self.add(idx, m.start(),
                         "unseeded random engine in a simulation path: seed "
                         "explicitly from config so replays reproduce",
                         "tracer-no-nondeterminism-in-sim")
                continue
            m = RANGE_FOR.search(code)
            if m and m.group(1) in unordered_vars:
                self.add(idx, m.start(),
                         f"iterating unordered container '{m.group(1)}' in a "
                         "simulation path is address-ordered and "
                         "nondeterministic; iterate a vector/map or sort "
                         "first (NOLINT with justification if the body "
                         "provably commutes)",
                         "tracer-no-nondeterminism-in-sim")

    def check_narrowing(self):
        if not self.in_path(PATH_FILTER_NARROW):
            return
        rank = {}
        for line in self.code:
            for m in INT_DECL.finditer(blank_strings(line)):
                bits = m.group(2)
                rank[m.group(3)] = int(bits) if bits else 64
        fn_names = enclosing_function_tracker(self.code)
        for idx, line in enumerate(self.code):
            fn = fn_names[idx]
            if fn is not None and not CODEC_FUNCTION.search(fn):
                continue
            code = blank_strings(line)
            if "static_cast" in code:
                continue
            m = ASSIGNMENT.match(code)
            if not m:
                continue
            lhs, rhs = m.group(1), m.group(2)
            lhs_rank = rank.get(lhs)
            if lhs_rank is None or lhs_rank >= 64:
                continue
            rhs_rank = 0
            if re.search(r"\.\s*(size|length|count)\s*\(\)", rhs):
                rhs_rank = 64
            for ident in re.findall(r"[A-Za-z_]\w*", rhs):
                rhs_rank = max(rhs_rank, rank.get(ident, 0))
            if rhs_rank > lhs_rank:
                self.add(idx, 0,
                         f"implicit narrowing into {lhs_rank}-bit '{lhs}' in "
                         f"codec function '{fn or '?'}' can silently truncate "
                         "a wire field; make the width change an explicit "
                         "static_cast next to a range check",
                         "tracer-unchecked-narrowing-in-codec")

    # -- NOLINT handling ---------------------------------------------------

    def nolint_for_line(self, idx):
        """Return (globs, justified, nolint_line) for a NOLINT suppressing
        line idx, or None. Mirrors clang-tidy: same-line NOLINT or
        NOLINTNEXTLINE on the previous line."""
        for src_idx, want_next in ((idx, False), (idx - 1, True)):
            if src_idx < 0 or src_idx >= len(self.raw_lines):
                continue
            text = self.raw_lines[src_idx]
            m = NOLINT_RE.search(text)
            if not m or bool(m.group(1)) != want_next:
                continue
            globs = [g.strip() for g in (m.group(2) or "*").split(",")]
            justified = bool(JUSTIFIED_NOLINT.search(text))
            return globs, justified, src_idx
        return None

    def apply_nolint(self):
        kept = []
        justification_sites = {}
        for d in self.diags:
            hit = self.nolint_for_line(d.line - 1)
            if hit is None:
                kept.append(d)
                continue
            globs, justified, src_idx = hit
            if not any(fnmatch.fnmatch(d.check, g) for g in globs):
                kept.append(d)
                continue
            if d.check.startswith("tracer-") and not justified:
                justification_sites[src_idx] = d.check
        for src_idx, check in sorted(justification_sites.items()):
            kept.append(Diagnostic(
                self.display, src_idx + 1, 1,
                f"NOLINT suppressing '{check}' must carry an in-line "
                "justification: '// NOLINT(" + check + "): <why this site "
                "is exempt>' (docs/STATIC_ANALYSIS.md NOLINT policy)",
                "tracer-nolint-justification"))
        kept.sort(key=lambda d: (d.line, d.col, d.check))
        return kept


def collect_files(paths):
    exts = (".cpp", ".h", ".cc", ".hpp")
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
        else:
            for root, _dirs, files in os.walk(p):
                for name in sorted(files):
                    if name.endswith(exts):
                        out.append(os.path.join(root, name))
    return sorted(out)


def main(argv):
    fixture_mode = False
    paths = []
    for arg in argv[1:]:
        if arg == "--fixture-mode":
            fixture_mode = True
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg.startswith("-"):
            sys.exit(f"tracer_lint.py: unknown option {arg}\n{__doc__}")
        else:
            paths.append(arg)
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(root, "src")]
    files = collect_files(paths)
    if not files:
        sys.exit("tracer_lint.py: no input files")
    total = 0
    for path in files:
        display = os.path.abspath(path).replace(os.sep, "/")
        linter = FileLinter(path, display, fixture_mode=fixture_mode)
        for diag in linter.run():
            print(diag)
            total += 1
    if total:
        print(f"tracer_lint: {total} finding(s) across {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"tracer_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
