#include "obs/registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tracer::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping (names are code-chosen, but stay safe).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

namespace {
// Validate before the member initializers run: a bad range must throw
// invalid_argument, not feed a negative bin count into vector's allocator.
std::size_t checked_bin_count(double lo, double hi,
                              std::size_t bins_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < lo < hi and bins_per_decade > 0");
  }
  return static_cast<std::size_t>(std::ceil(
      (std::log10(hi) - std::log10(lo)) * static_cast<double>(bins_per_decade)));
}
}  // namespace

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : lo_(lo), hi_(hi), log_lo_(std::log10(lo)),
      bins_per_log10_(static_cast<double>(bins_per_decade)),
      bins_(checked_bin_count(lo, hi, bins_per_decade)) {}

double LogHistogram::bin_lo(std::size_t i) const {
  return std::pow(10.0, log_lo_ + static_cast<double>(i) / bins_per_log10_);
}

double LogHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double LogHistogram::percentile(double q) const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto count =
        static_cast<double>(bins_[i].load(std::memory_order_relaxed));
    if (cum + count >= target) {
      // Geometric interpolation within the bin keeps the estimate's
      // relative error within one bin ratio.
      const double frac = count > 0.0 ? (target - cum) / count : 0.0;
      return bin_lo(i) * std::pow(bin_hi(i) / bin_lo(i), frac);
    }
    cum += count;
  }
  return hi_;
}

void LogHistogram::reset() noexcept {
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t fallback) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

double Snapshot::gauge_or(std::string_view name, double fallback) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  return fallback;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + format_double(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& hist : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(hist.name) +
           "\": {\"count\": " + std::to_string(hist.count) +
           ", \"p50\": " + format_double(hist.p50) +
           ", \"p95\": " + format_double(hist.p95) +
           ", \"p99\": " + format_double(hist.p99) + "}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string Snapshot::to_csv() const {
  // Names are dot-separated identifiers (never commas/quotes), so plain
  // CSV rows are unambiguous.
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : counters) {
    out += "counter," + name + "," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge," + name + "," + format_double(value) + "\n";
  }
  for (const auto& hist : histograms) {
    out += "histogram," + hist.name + ".count," + std::to_string(hist.count) +
           "\n";
    out += "histogram," + hist.name + ".p50," + format_double(hist.p50) + "\n";
    out += "histogram," + hist.name + ".p95," + format_double(hist.p95) + "\n";
    out += "histogram," + hist.name + ".p99," + format_double(hist.p99) + "\n";
  }
  return out;
}

void Snapshot::write_json(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Snapshot: cannot write " + path.string());
  }
  out << to_json();
}

void Snapshot::write_csv(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Snapshot: cannot write " + path.string());
  }
  out << to_csv();
}

Registry& Registry::global() {
  // Leaked on purpose: instrumented code may run during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LogHistogram& Registry::histogram(std::string_view name, double lo, double hi,
                                  std::size_t bins_per_decade) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LogHistogram>(lo, hi, bins_per_decade))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  util::MutexLock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramStats stats;
    stats.name = name;
    stats.count = hist->total();
    stats.p50 = hist->percentile(0.50);
    stats.p95 = hist->percentile(0.95);
    stats.p99 = hist->percentile(0.99);
    snap.histograms.push_back(std::move(stats));
  }
  return snap;
}

void Registry::reset_values() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

ScopedTimer::ScopedTimer(Counter& micros, Counter& calls) noexcept
    : micros_(micros), calls_(calls), begin_ns_(steady_ns()) {}

ScopedTimer::~ScopedTimer() {
  micros_.add((steady_ns() - begin_ns_) / 1000);
  calls_.increment();
}

}  // namespace tracer::obs
