// Small string helpers shared by the trace repository naming scheme, the
// SRT parser, and the config reader.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tracer::util {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// Parse helpers returning false on malformed input instead of throwing —
/// trace files come from outside the process and must not crash it.
bool parse_u64(std::string_view text, std::uint64_t& out);
bool parse_i64(std::string_view text, std::int64_t& out);
bool parse_double(std::string_view text, double& out);

/// "4K" -> 4096, "1M" -> 1048576, "512" -> 512. Returns false on junk.
bool parse_size(std::string_view text, std::uint64_t& out);

/// 4096 -> "4K", 1048576 -> "1M", 512 -> "512B" (repository file names).
std::string format_size(std::uint64_t bytes);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tracer::util
