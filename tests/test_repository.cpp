#include "trace/repository.h"

#include <gtest/gtest.h>

#include <fstream>

namespace tracer::trace {
namespace {

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tracer_repo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Trace tiny_trace() {
  Trace trace;
  trace.device = "raid5-hdd6";
  Bunch bunch;
  bunch.timestamp = 0.0;
  bunch.packages.push_back(IoPackage{0, 4096, OpType::kRead});
  trace.bunches.push_back(bunch);
  return trace;
}

TEST(TraceKey, FileNameEncodesAllFields) {
  TraceKey key{"raid5-hdd6", 4096, 50, 25};
  EXPECT_EQ(key.file_name(), "raid5-hdd6_rs4K_rnd50_rd25.replay");
}

TEST(TraceKey, ParseRoundTripsFileName) {
  for (const TraceKey& key : {
           TraceKey{"raid5-hdd6", 4096, 50, 25},
           TraceKey{"ssd", 512, 0, 100},
           TraceKey{"dev_with_underscore", 1048576, 100, 0},
       }) {
    const auto parsed = TraceKey::parse(key.file_name());
    ASSERT_TRUE(parsed.has_value()) << key.file_name();
    EXPECT_EQ(*parsed, key);
  }
}

TEST(TraceKey, ParseRejectsForeignNames) {
  EXPECT_FALSE(TraceKey::parse("notes.txt").has_value());
  EXPECT_FALSE(TraceKey::parse("x.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rs4K_rnd50.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rsXX_rnd50_rd0.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("a_rs4K_rnd200_rd0.replay").has_value());
  EXPECT_FALSE(TraceKey::parse("_rs4K_rnd50_rd0.replay").has_value());
}

TEST_F(RepositoryTest, StoreLoadRoundTrip) {
  TraceRepository repo(dir_);
  const TraceKey key{"raid5-hdd6", 4096, 50, 0};
  const Trace trace = tiny_trace();
  EXPECT_FALSE(repo.contains(key));
  repo.store(key, trace);
  EXPECT_TRUE(repo.contains(key));
  EXPECT_EQ(repo.load(key), trace);
}

TEST_F(RepositoryTest, LoadMissingThrows) {
  TraceRepository repo(dir_);
  EXPECT_THROW(repo.load(TraceKey{"x", 512, 0, 0}), std::runtime_error);
}

TEST_F(RepositoryTest, ListReturnsSortedKeysAndSkipsForeignFiles) {
  TraceRepository repo(dir_);
  repo.store(TraceKey{"b", 4096, 50, 0}, tiny_trace());
  repo.store(TraceKey{"a", 512, 0, 100}, tiny_trace());
  { std::ofstream junk(dir_ / "README.txt"); junk << "hi"; }
  const auto keys = repo.list();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].device, "a");
  EXPECT_EQ(keys[1].device, "b");
}

TEST_F(RepositoryTest, StoreOverwritesExisting) {
  TraceRepository repo(dir_);
  const TraceKey key{"dev", 4096, 0, 0};
  repo.store(key, tiny_trace());
  Trace bigger = tiny_trace();
  bigger.bunches.push_back(bigger.bunches[0]);
  repo.store(key, bigger);
  EXPECT_EQ(repo.load(key).bunch_count(), 2u);
}

TEST_F(RepositoryTest, CreatesDirectoryOnConstruction) {
  EXPECT_FALSE(std::filesystem::exists(dir_));
  TraceRepository repo(dir_ / "nested" / "deeper");
  EXPECT_TRUE(std::filesystem::exists(dir_ / "nested" / "deeper"));
}

}  // namespace
}  // namespace tracer::trace
