#include "workload/oltp_model.h"

#include <gtest/gtest.h>

#include "core/replay_engine.h"
#include "storage/disk_array.h"
#include "trace/trace_stats.h"

namespace tracer::workload {
namespace {

OltpParams small_params() {
  OltpParams params;
  params.duration = 30.0;
  params.tps = 80.0;
  params.table_space = 2ULL * 1024 * 1024 * 1024;
  params.log_space = 256ULL * 1024 * 1024;
  params.seed = 3;
  return params;
}

TEST(OltpModel, RejectsBadParameters) {
  OltpParams params = small_params();
  params.duration = 0.0;
  EXPECT_THROW(OltpModel{params}, std::invalid_argument);
  params = small_params();
  params.page_size = 1000;  // not sector-aligned
  EXPECT_THROW(OltpModel{params}, std::invalid_argument);
  params = small_params();
  params.pages_per_txn = 0.5;
  EXPECT_THROW(OltpModel{params}, std::invalid_argument);
}

TEST(OltpModel, AllRequestsArePageSized) {
  OltpModel model(small_params());
  const trace::Trace trace = model.generate();
  ASSERT_GT(trace.package_count(), 1000u);
  for (const auto& bunch : trace.bunches) {
    for (const auto& pkg : bunch.packages) {
      EXPECT_EQ(pkg.bytes, small_params().page_size);
    }
  }
}

TEST(OltpModel, ReadHeavyWithWalAndCheckpointWrites) {
  OltpModel model(small_params());
  const trace::Trace trace = model.generate();
  const double read_ratio = trace.read_ratio();
  // Data reads dominate; WAL + checkpoints contribute a visible write tail.
  EXPECT_GT(read_ratio, 0.6);
  EXPECT_LT(read_ratio, 0.95);
}

TEST(OltpModel, WalWritesAreSequentialInLogExtent) {
  OltpParams params = small_params();
  OltpModel model(params);
  const trace::Trace trace = model.generate();
  const Sector log_base = params.table_space / kSectorSize;
  Sector last_wal = 0;
  bool seen = false;
  std::size_t wal_count = 0;
  std::size_t in_order = 0;
  for (const auto& bunch : trace.bunches) {
    for (const auto& pkg : bunch.packages) {
      if (pkg.op != OpType::kWrite || pkg.sector < log_base) continue;
      ++wal_count;
      if (seen && pkg.sector > last_wal) ++in_order;
      last_wal = pkg.sector;
      seen = true;
    }
  }
  ASSERT_GT(wal_count, 100u);
  // Monotone except for extent wrap-around.
  EXPECT_GT(static_cast<double>(in_order) / wal_count, 0.95);
}

TEST(OltpModel, CheckpointsCreatePeriodicWriteBursts) {
  OltpParams params = small_params();
  params.checkpoint_period = 10.0;
  OltpModel model(params);
  const trace::Trace trace = model.generate();
  const Sector log_base = params.table_space / kSectorSize;
  // Bin data-extent writes per second; checkpoint seconds dominate.
  std::vector<double> bins(static_cast<std::size_t>(params.duration) + 1,
                           0.0);
  for (const auto& bunch : trace.bunches) {
    for (const auto& pkg : bunch.packages) {
      if (pkg.op != OpType::kWrite || pkg.sector >= log_base) continue;
      bins[static_cast<std::size_t>(bunch.timestamp)] += 1.0;
    }
  }
  double burst = 0.0;
  double quiet = 0.0;
  for (std::size_t s = 0; s < bins.size(); ++s) {
    if (s % 10 == 0 && s > 0) burst += bins[s];
    else quiet += bins[s];
  }
  EXPECT_GT(burst, quiet);
}

TEST(OltpModel, HotPagesDominateFootprint) {
  // A compact table re-references hot pages heavily: bytes moved must far
  // exceed the touched footprint.
  OltpParams params = small_params();
  params.duration = 60.0;
  params.table_space = 128ULL * 1024 * 1024;
  params.log_space = 64ULL * 1024 * 1024;
  OltpModel model(params);
  const trace::Trace trace = model.generate();
  const auto stats = trace::compute_stats(trace);
  EXPECT_LT(stats.dataset_bytes, stats.total_bytes / 2);
}

TEST(OltpModel, DeterministicForSeed) {
  OltpModel a(small_params());
  OltpModel b(small_params());
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(OltpModel, ReplaysOnTestbedEndToEnd) {
  OltpParams params = small_params();
  params.duration = 10.0;
  OltpModel model(params);
  const trace::Trace trace = model.generate();
  core::ReplayEngine engine;
  storage::DiskArray array(engine.simulator(),
                           storage::ArrayConfig::hdd_testbed(6));
  const core::ReplayReport report = engine.replay(trace, array);
  EXPECT_EQ(report.perf.completions, trace.package_count());
  EXPECT_GT(report.efficiency.iops_per_watt, 0.0);
}

}  // namespace
}  // namespace tracer::workload
