#include "core/metrics.h"

#include <stdexcept>

namespace tracer::core {

EfficiencyMetrics compute_efficiency(double iops, double mbps, Watts watts) {
  if (!(watts > 0.0)) {
    throw std::invalid_argument("compute_efficiency: watts must be > 0");
  }
  EfficiencyMetrics metrics;
  metrics.iops_per_watt = iops / watts;
  metrics.mbps_per_kilowatt = mbps / (watts / 1000.0);
  return metrics;
}

double load_proportion(double throughput_original,
                       double throughput_manipulated) {
  if (!(throughput_original > 0.0)) {
    throw std::invalid_argument(
        "load_proportion: original throughput must be > 0");
  }
  return throughput_manipulated / throughput_original;
}

double load_control_accuracy(double measured_proportion,
                             double configured_proportion) {
  if (!(configured_proportion > 0.0)) {
    throw std::invalid_argument(
        "load_control_accuracy: configured proportion must be > 0");
  }
  return measured_proportion / configured_proportion;
}

LoadControlRow make_load_control_row(double configured, double base_iops,
                                     double base_mbps, double iops,
                                     double mbps) {
  LoadControlRow row;
  row.configured = configured;
  row.measured_iops_lp = load_proportion(base_iops, iops);
  row.measured_mbps_lp = load_proportion(base_mbps, mbps);
  row.accuracy_iops = load_control_accuracy(row.measured_iops_lp, configured);
  row.accuracy_mbps = load_control_accuracy(row.measured_mbps_lp, configured);
  return row;
}

}  // namespace tracer::core
