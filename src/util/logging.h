// Minimal levelled logger. Thread-safe; writes to stderr by default so bench
// table output on stdout stays machine-parsable.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/sync.h"

namespace tracer::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogLevel level);

/// Process-wide logger singleton. Usage:
///   TRACER_LOG(kInfo) << "replayed " << n << " bunches";
class Logger {
 public:
  static Logger& instance();

  /// Safe from any thread: tests lower the level while sweep workers are
  /// already logging, so the threshold is an atomic, not a plain enum.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Mutex mutex_;  ///< serialises the stderr write so lines never interleave
};

/// RAII line builder; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace tracer::util

#define TRACER_LOG(level)                                              \
  if (!::tracer::util::Logger::instance().enabled(                    \
          ::tracer::util::LogLevel::level)) {                          \
  } else                                                               \
    ::tracer::util::LogLine(::tracer::util::LogLevel::level)
